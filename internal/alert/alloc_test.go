package alert

import "testing"

// Allocation pins for batch-column reuse: once a Batch has grown its
// columns, the Reset-and-refill cycle the ingest dispatcher and the
// preprocessor's absorb path run every tick must stay off the heap.
func TestBatchReuseAllocFree(t *testing.T) {
	a := testAlert()
	var src, dst Batch
	fill := func() {
		src.Reset()
		for i := 0; i < 64; i++ {
			src.Append(&a)
		}
	}
	fill() // grow the columns once
	if avg := testing.AllocsPerRun(100, fill); avg != 0 {
		t.Errorf("warm Reset+Append cycle allocates %.1f times per run, want 0", avg)
	}
	dst.AppendRange(&src, 0, src.Len()) // grow the absorb side once
	if avg := testing.AllocsPerRun(100, func() {
		dst.Reset()
		dst.AppendRange(&src, 0, src.Len())
	}); avg != 0 {
		t.Errorf("warm Reset+AppendRange cycle allocates %.1f times per run, want 0", avg)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("absorb lost rows: %d != %d", dst.Len(), src.Len())
	}
}
