package alert

import (
	"fmt"
	"reflect"
	"testing"

	"skynet/internal/hierarchy"
)

// Allocation pins for batch-column reuse: once a Batch has grown its
// columns, the Reset-and-refill cycle the ingest dispatcher and the
// preprocessor's absorb path run every tick must stay off the heap.
func TestBatchReuseAllocFree(t *testing.T) {
	a := testAlert()
	var src, dst Batch
	fill := func() {
		src.Reset()
		for i := 0; i < 64; i++ {
			src.Append(&a)
		}
	}
	fill() // grow the columns once
	if avg := testing.AllocsPerRun(100, fill); avg != 0 {
		t.Errorf("warm Reset+Append cycle allocates %.1f times per run, want 0", avg)
	}
	dst.AppendRange(&src, 0, src.Len()) // grow the absorb side once
	if avg := testing.AllocsPerRun(100, func() {
		dst.Reset()
		dst.AppendRange(&src, 0, src.Len())
	}); avg != 0 {
		t.Errorf("warm Reset+AppendRange cycle allocates %.1f times per run, want 0", avg)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("absorb lost rows: %d != %d", dst.Len(), src.Len())
	}
}

// wireTestLines encodes a handful of alerts that exercise every string
// field of the wire format (type, location, peer, circuitset, raw).
func wireTestLines(t *testing.T) [][]byte {
	t.Helper()
	peer, err := hierarchy.New("RG01", "CT02", "LS03")
	if err != nil {
		t.Fatal(err)
	}
	var lines [][]byte
	for i := 0; i < 4; i++ {
		a := testAlert()
		a.Type = fmt.Sprintf("%s-%d", a.Type, i)
		a.Peer = peer
		a.Value = 0.15 * float64(i+1)
		a.CircuitSet = fmt.Sprintf("cs-%d", i)
		a.Raw = fmt.Sprintf("ping loss RG01/CT01 sev=%d", i)
		lines = append(lines, AppendWire(nil, &a))
	}
	return lines
}

// Allocation pins for the scratch-backed wire decoders: once a
// WireScratch has seen a line's string fields, re-decoding lines built
// from the same vocabulary must stay off the heap entirely. This is the
// property that keeps the UDP ingest loops allocation-free through a
// flood, where the same few dozen types and locations recur on every
// datagram.
func TestWireScratchDecodeAllocFree(t *testing.T) {
	lines := wireTestLines(t)
	var sc WireScratch
	for _, l := range lines { // warm the intern caches
		if _, err := sc.ParseWire(l); err != nil {
			t.Fatal(err)
		}
	}
	var sink Alert
	if avg := testing.AllocsPerRun(100, func() {
		for _, l := range lines {
			a, err := sc.ParseWire(l)
			if err != nil {
				t.Fatal(err)
			}
			sink = a
		}
	}); avg != 0 {
		t.Errorf("warm scratch ParseWire allocates %.1f times per run, want 0", avg)
	}
	_ = sink

	var b Batch
	fill := func() {
		b.Reset()
		for _, l := range lines {
			if err := b.AppendWireScratch(l, &sc); err != nil {
				t.Fatal(err)
			}
		}
	}
	fill() // grow the columns once
	if avg := testing.AllocsPerRun(100, fill); avg != 0 {
		t.Errorf("warm scratch AppendWireScratch cycle allocates %.1f times per run, want 0", avg)
	}
}

// TestWireScratchMatchesPlainDecode pins that the scratch path is a
// pure optimization: both decoders produce identical rows.
func TestWireScratchMatchesPlainDecode(t *testing.T) {
	var sc WireScratch
	for _, l := range wireTestLines(t) {
		want, err := ParseWire(l)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.ParseWire(l)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("scratch decode mismatch for %q:\n got %+v\nwant %+v", l, got, want)
		}
		var plain, scratched Batch
		if err := plain.AppendWire(l); err != nil {
			t.Fatal(err)
		}
		if err := scratched.AppendWireScratch(l, &sc); err != nil {
			t.Fatal(err)
		}
		var pa, sa Alert
		plain.AlertAt(0, &pa)
		scratched.AlertAt(0, &sa)
		if !reflect.DeepEqual(pa, sa) {
			t.Errorf("scratch batch decode mismatch for %q:\n got %+v\nwant %+v", l, sa, pa)
		}
	}
}

// TestWireScratchCapResets feeds more distinct values than the cache
// cap and checks the scratch bounds itself (hostile high-cardinality
// input must not grow the cache without limit) while still decoding
// correctly.
func TestWireScratchCapResets(t *testing.T) {
	var sc WireScratch
	a := testAlert()
	var line []byte
	for i := 0; i < wireScratchMaxEntries+8; i++ {
		a.Type = fmt.Sprintf("type-%d", i)
		line = AppendWire(line[:0], &a)
		got, err := sc.ParseWire(line)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != a.Type {
			t.Fatalf("decode %d: type %q, want %q", i, got.Type, a.Type)
		}
		if len(sc.strs) > wireScratchMaxEntries {
			t.Fatalf("cache grew to %d entries, cap %d", len(sc.strs), wireScratchMaxEntries)
		}
	}
	if len(sc.strs) >= wireScratchMaxEntries {
		t.Errorf("cache did not reset at cap: %d entries", len(sc.strs))
	}
}
