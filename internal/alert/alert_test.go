package alert

import (
	"strings"
	"testing"
	"time"

	"skynet/internal/hierarchy"
)

var testLoc = hierarchy.MustNew("RegionA", "Citya", "Logic site 2", "Site I", "Cluster ii", "Device i")

func testAlert() Alert {
	t0 := time.Date(2024, 7, 2, 11, 45, 14, 0, time.UTC)
	return Alert{
		ID:       1,
		Source:   SourcePing,
		Type:     TypePacketLoss,
		Class:    ClassFailure,
		Time:     t0,
		End:      t0.Add(3 * time.Minute),
		Location: testLoc,
		Value:    0.15,
		Count:    42,
	}
}

func TestSourceNames(t *testing.T) {
	for _, s := range Sources() {
		if !s.Valid() {
			t.Errorf("source %d invalid", s)
		}
		got, err := ParseSource(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSource(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseSource("bogus"); err == nil {
		t.Error("ParseSource(bogus): want error")
	}
	if _, err := ParseSource("unknown"); err == nil {
		t.Error("ParseSource(unknown): want error (not a real source)")
	}
	if len(Sources()) != 13 {
		t.Errorf("Sources() = %d entries, want 13 (Table 2)", len(Sources()))
	}
	if SourceUnknown.Valid() {
		t.Error("SourceUnknown should be invalid")
	}
	if Source(99).String() != "source(99)" {
		t.Errorf("out of range String = %q", Source(99).String())
	}
}

func TestClassNames(t *testing.T) {
	for c := ClassInfo; c <= ClassFailure; c++ {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Error("ParseClass(bogus): want error")
	}
	if !ClassFailure.Valid() || Class(-1).Valid() {
		t.Error("class validity mismatch")
	}
}

func TestClassOrdering(t *testing.T) {
	// Failure alerts are the most authoritative during detection (§4.2);
	// the numeric ordering encodes that priority.
	if !(ClassFailure > ClassRootCause && ClassRootCause > ClassAbnormal && ClassAbnormal > ClassInfo) {
		t.Error("class ordering does not encode priority")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		src  Source
		typ  string
		want Class
	}{
		{SourcePing, TypePacketLoss, ClassFailure},
		{SourceSyslog, TypeLinkDown, ClassRootCause},
		{SourceSyslog, TypeBGPPeerDown, ClassAbnormal},
		{SourceSNMP, TypeTrafficCongestion, ClassAbnormal},
		{SourceOutOfBand, TypeDeviceInaccessible, ClassAbnormal},
		{SourceSyslog, "never heard of it", ClassInfo},
		{SourceModificationEvents, TypeModificationDone, ClassInfo},
	}
	for _, c := range cases {
		if got := Classify(c.src, c.typ); got != c.want {
			t.Errorf("Classify(%v, %q) = %v, want %v", c.src, c.typ, got, c.want)
		}
	}
	if CatalogSize() < 40 {
		t.Errorf("catalog unexpectedly small: %d", CatalogSize())
	}
	if len(KnownTypes()) != CatalogSize() {
		t.Error("KnownTypes length mismatch")
	}
}

func TestCatalogConsistency(t *testing.T) {
	// Every cataloged pair must have a valid source and a non-empty type,
	// and classify back to its catalog class.
	for _, k := range KnownTypes() {
		if !k.Source.Valid() {
			t.Errorf("catalog key %v: invalid source", k)
		}
		if k.Type == "" || k.Type != strings.ToLower(k.Type) {
			t.Errorf("catalog type %q must be non-empty lowercase", k.Type)
		}
	}
}

func TestValidate(t *testing.T) {
	good := testAlert()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid alert rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Alert)
	}{
		{"invalid source", func(a *Alert) { a.Source = SourceUnknown }},
		{"empty type", func(a *Alert) { a.Type = "" }},
		{"invalid class", func(a *Alert) { a.Class = Class(99) }},
		{"zero time", func(a *Alert) { a.Time = time.Time{}; a.End = time.Time{} }},
		{"end before start", func(a *Alert) { a.End = a.Time.Add(-time.Second) }},
		{"root location", func(a *Alert) { a.Location = hierarchy.Root() }},
		{"negative count", func(a *Alert) { a.Count = -1 }},
	}
	for _, m := range mutations {
		a := testAlert()
		m.mut(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: want error", m.name)
		}
	}
}

func TestDuration(t *testing.T) {
	a := testAlert()
	if a.Duration() != 3*time.Minute {
		t.Errorf("Duration = %v", a.Duration())
	}
	a.End = a.Time.Add(-time.Hour)
	if a.Duration() != 0 {
		t.Error("inverted span should clamp to zero duration")
	}
}

func TestTypeKeyString(t *testing.T) {
	a := testAlert()
	if got := a.Key().String(); got != "[ping][packet loss]" {
		t.Errorf("Key().String() = %q", got)
	}
	if !strings.Contains(a.String(), "[ping][packet loss]") {
		t.Errorf("alert String missing key: %q", a.String())
	}
	zeroVal := testAlert()
	zeroVal.Value = 0
	if !strings.Contains(zeroVal.String(), " - ") {
		t.Errorf("zero value should render as '-': %q", zeroVal.String())
	}
}
