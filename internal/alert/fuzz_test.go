package alert

import (
	"bytes"
	"testing"
)

// FuzzParseWire hardens the UDP ingestion path: arbitrary datagram bytes
// must never panic, and anything that parses must re-encode to something
// that parses back to the same alert.
func FuzzParseWire(f *testing.F) {
	a := testAlert()
	f.Add(AppendWire(nil, &a))
	f.Add([]byte(""))
	f.Add([]byte("||||||||||"))
	f.Add([]byte("0|0|ping|t|failure|R|R|0|1||"))
	f.Add([]byte("9999999999999999999|x|ping|t|failure|R|R|0.5|1|cs|raw"))
	f.Add([]byte("\x00\x01\x02|\xff|ping|t|failure|R|R|0|1||"))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := ParseWire(data)
		if err != nil {
			return
		}
		// Round-trip stability for accepted inputs.
		re := AppendWire(nil, &parsed)
		again, err := ParseWire(re)
		if err != nil {
			t.Fatalf("re-encode of accepted alert failed: %v\n in: %q\n re: %q", err, data, re)
		}
		if !alertEqual(&parsed, &again) {
			t.Fatalf("round trip unstable:\n a: %+v\n b: %+v", parsed, again)
		}
	})
}

// FuzzJSONDecode hardens the TCP ingestion path the same way.
func FuzzJSONDecode(f *testing.F) {
	f.Add([]byte(`{"source":"ping","type":"packet loss","class":"failure","time":"2024-07-02T11:00:00Z","end":"2024-07-02T11:00:00Z","location":"R|C|L|S|K|d"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"location":"a||b"}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		all, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := range all {
			_ = all[i].Validate() // must not panic
		}
	})
}
