package alert

import (
	"bytes"
	"testing"
)

// FuzzParseWire hardens the UDP ingestion path: arbitrary datagram bytes
// must never panic, and anything that parses must re-encode to something
// that parses back to the same alert.
func FuzzParseWire(f *testing.F) {
	a := testAlert()
	f.Add(AppendWire(nil, &a))
	f.Add([]byte(""))
	f.Add([]byte("||||||||||"))
	f.Add([]byte("0|0|ping|t|failure|R|R|0|1||"))
	f.Add([]byte("9999999999999999999|x|ping|t|failure|R|R|0.5|1|cs|raw"))
	f.Add([]byte("\x00\x01\x02|\xff|ping|t|failure|R|R|0|1||"))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := ParseWire(data)
		if err != nil {
			return
		}
		// Round-trip stability for accepted inputs.
		re := AppendWire(nil, &parsed)
		again, err := ParseWire(re)
		if err != nil {
			t.Fatalf("re-encode of accepted alert failed: %v\n in: %q\n re: %q", err, data, re)
		}
		if !alertEqual(&parsed, &again) {
			t.Fatalf("round trip unstable:\n a: %+v\n b: %+v", parsed, again)
		}
	})
}

// FuzzJSONDecode hardens the TCP ingestion path the same way.
func FuzzJSONDecode(f *testing.F) {
	f.Add([]byte(`{"source":"ping","type":"packet loss","class":"failure","time":"2024-07-02T11:00:00Z","end":"2024-07-02T11:00:00Z","location":"R|C|L|S|K|d"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"location":"a||b"}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		all, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := range all {
			_ = all[i].Validate() // must not panic
		}
	})
}

// FuzzWireBatchDecode hardens the columnar UDP ingestion path: arbitrary
// datagram bytes must never panic, a rejected frame must leave the batch
// exactly as it was (no partial rows, column lengths in lockstep), an
// accepted frame must decode identically to ParseWire, and no column may
// alias the caller's buffer — the buffer is reused for the next datagram.
func FuzzWireBatchDecode(f *testing.F) {
	a := testAlert()
	f.Add(AppendWire(nil, &a))
	f.Add([]byte(""))
	f.Add([]byte("||||||||||"))
	f.Add([]byte("0|0|ping|t|failure|R|R|0|1||"))
	f.Add([]byte("9999999999999999999|x|ping|t|failure|R|R|0.5|1|cs|raw"))
	f.Add([]byte("\x00\x01\x02|\xff|ping|t|failure|R|R|0|1||"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode from a buffer we can clobber afterwards, like the UDP
		// reader's reused read buffer.
		buf := append([]byte(nil), data...)
		var b Batch
		b.Append(&a) // pre-existing row that a rejected frame must not disturb
		err := b.AppendWire(buf)

		want, werr := ParseWire(data)
		if (err == nil) != (werr == nil) {
			t.Fatalf("batch/alert decoders disagree: batch err=%v, ParseWire err=%v, in=%q", err, werr, data)
		}
		if err != nil {
			if b.Len() != 1 {
				t.Fatalf("rejected frame left %d rows, want 1", b.Len())
			}
		} else if b.Len() != 2 {
			t.Fatalf("accepted frame left %d rows, want 2", b.Len())
		}
		// Column lengths must stay in lockstep either way.
		n := b.Len()
		if len(b.End) != n || len(b.Source) != n || len(b.Type) != n || len(b.Class) != n ||
			len(b.Location) != n || len(b.Peer) != n || len(b.Value) != n || len(b.Count) != n ||
			len(b.CircuitSet) != n || len(b.Raw) != n || len(b.PID) != n || len(b.TID) != n || len(b.CS) != n {
			t.Fatalf("ragged columns after decode of %q", data)
		}
		if err != nil {
			return
		}
		// Clobber the input buffer; the decoded row must be unaffected.
		for i := range buf {
			buf[i] = 0xAA
		}
		var got Alert
		b.AlertAt(1, &got)
		want.Count = max(want.Count, 0) // AlertAt reports the stored count verbatim
		if !alertEqual(&got, &want) {
			t.Fatalf("columnar decode diverges from ParseWire (or aliased the buffer):\n got:  %+v\n want: %+v\n in: %q", got, want, data)
		}
	})
}
