package alert

// This file holds the alert-type catalog: the manually curated mapping from
// (source, type) to Class described in §4.1 ("The classification process
// starts with manually assigning types to existing alerts... we prioritize
// the most critical and complete the manual classification over several
// months"). Types absent from the catalog default to ClassInfo so that an
// unclassified alert can never trip incident thresholds on its own.

// Canonical alert type names used across the monitors, the preprocessor,
// and the experiments. Keeping them as constants prevents the silent
// type-string drift that would break dedup counting.
const (
	// Behaviour-level failures (ClassFailure).
	TypePacketLoss       = "packet loss"
	TypeEndToEndICMP     = "end to end icmp"
	TypeEndToEndTCP      = "end to end tcp"
	TypeEndToEndSource   = "end to end source"
	TypeHighLatency      = "high latency"
	TypeBitFlip          = "packet bit flip"
	TypeInternetLoss     = "internet unreachability"
	TypeTrafficBlackhole = "traffic blackhole"

	// Irregular-but-not-proven-broken behaviour (ClassAbnormal).
	TypeTrafficDrop        = "traffic drop"
	TypeTrafficSurge       = "traffic surge"
	TypeLatencyJitter      = "latency jitter"
	TypeLinkFlapping       = "link flapping"
	TypePortFlapping       = "port flapping"
	TypeBGPPeerDown        = "bgp peer down"
	TypeDeviceInaccessible = "inaccessible"
	TypeHighCPU            = "high cpu"
	TypeHighMemory         = "high memory"
	TypeClockUnsync        = "clock out of sync"
	TypeHopLatency         = "hop latency"
	TypePathChange         = "path change"
	TypeTrafficCongestion  = "traffic congestion"
	TypeSLAFlowOverLimit   = "sla flow beyond limit"

	// Entity failures that pinpoint what to repair (ClassRootCause).
	TypeLinkDown           = "link down"
	TypePortDown           = "port down"
	TypeInterfaceDown      = "interface down"
	TypeDeviceDown         = "device down"
	TypeHardwareError      = "hardware error"
	TypeSoftwareError      = "software error"
	TypeOutOfMemory        = "out of memory"
	TypeCRCError           = "crc error"
	TypeRXError            = "rx error"
	TypeBGPLinkJitter      = "bgp link jitter"
	TypeRouteLoss          = "route loss"
	TypeRouteHijack        = "route hijack"
	TypeRouteLeak          = "route leak"
	TypeFanFailure         = "fan failure"
	TypePowerFailure       = "power failure"
	TypeHighTemperature    = "high temperature"
	TypeOpticalDegrade     = "optical power degrade"
	TypeINTRateMismatch    = "int rate mismatch"
	TypeModificationFailed = "modification failed"
	TypePatrolAnomaly      = "patrol anomaly"

	// Informational (ClassInfo).
	TypeModificationDone = "modification done"
	TypeConfigDrift      = "config drift"
)

// catalog maps (source, type) pairs to classes. A type may carry different
// classes under different sources; e.g. "link down" from SNMP counters is a
// root-cause alert just like from syslog.
var catalog = map[TypeKey]Class{
	// Ping mesh: end-to-end reachability failures.
	{SourcePing, TypePacketLoss}:     ClassFailure,
	{SourcePing, TypeEndToEndICMP}:   ClassFailure,
	{SourcePing, TypeEndToEndTCP}:    ClassFailure,
	{SourcePing, TypeEndToEndSource}: ClassFailure,
	{SourcePing, TypeHighLatency}:    ClassFailure,
	{SourcePing, TypeLatencyJitter}:  ClassAbnormal,

	// Traceroute: per-hop behaviour.
	{SourceTraceroute, TypeHopLatency}: ClassAbnormal,
	{SourceTraceroute, TypePathChange}: ClassAbnormal,
	{SourceTraceroute, TypePacketLoss}: ClassFailure,

	// Out-of-band monitoring: device liveness and environmentals.
	{SourceOutOfBand, TypeDeviceInaccessible}: ClassAbnormal,
	{SourceOutOfBand, TypeDeviceDown}:         ClassRootCause,
	{SourceOutOfBand, TypeHighCPU}:            ClassAbnormal,
	{SourceOutOfBand, TypeHighMemory}:         ClassAbnormal,
	{SourceOutOfBand, TypeHighTemperature}:    ClassRootCause,
	{SourceOutOfBand, TypeFanFailure}:         ClassRootCause,
	{SourceOutOfBand, TypePowerFailure}:       ClassRootCause,

	// sFlow traffic statistics.
	{SourceTraffic, TypePacketLoss}:        ClassFailure,
	{SourceTraffic, TypeTrafficDrop}:       ClassAbnormal,
	{SourceTraffic, TypeTrafficSurge}:      ClassAbnormal,
	{SourceTraffic, TypeTrafficCongestion}: ClassAbnormal,

	// NetFlow SLA accounting.
	{SourceNetFlow, TypeSLAFlowOverLimit}: ClassAbnormal,
	{SourceNetFlow, TypeTrafficDrop}:      ClassAbnormal,

	// Internet telemetry (DC → Internet probing).
	{SourceInternetTelemetry, TypeInternetLoss}: ClassFailure,
	{SourceInternetTelemetry, TypeHighLatency}:  ClassFailure,

	// Syslog (types produced by FT-tree classification).
	{SourceSyslog, TypeLinkDown}:         ClassRootCause,
	{SourceSyslog, TypePortDown}:         ClassRootCause,
	{SourceSyslog, TypeInterfaceDown}:    ClassRootCause,
	{SourceSyslog, TypeHardwareError}:    ClassRootCause,
	{SourceSyslog, TypeSoftwareError}:    ClassRootCause,
	{SourceSyslog, TypeOutOfMemory}:      ClassRootCause,
	{SourceSyslog, TypeCRCError}:         ClassRootCause,
	{SourceSyslog, TypeBGPLinkJitter}:    ClassRootCause,
	{SourceSyslog, TypeOpticalDegrade}:   ClassRootCause,
	{SourceSyslog, TypeTrafficBlackhole}: ClassFailure,
	{SourceSyslog, TypeLinkFlapping}:     ClassAbnormal,
	{SourceSyslog, TypePortFlapping}:     ClassAbnormal,
	{SourceSyslog, TypeBGPPeerDown}:      ClassAbnormal,

	// SNMP / GRPC counters.
	{SourceSNMP, TypeLinkDown}:          ClassRootCause,
	{SourceSNMP, TypePortDown}:          ClassRootCause,
	{SourceSNMP, TypeRXError}:           ClassRootCause,
	{SourceSNMP, TypeCRCError}:          ClassRootCause,
	{SourceSNMP, TypeTrafficCongestion}: ClassAbnormal,
	{SourceSNMP, TypeTrafficDrop}:       ClassAbnormal,
	{SourceSNMP, TypeTrafficSurge}:      ClassAbnormal,
	{SourceSNMP, TypeHighCPU}:           ClassAbnormal,
	{SourceSNMP, TypeHighMemory}:        ClassAbnormal,

	// In-band network telemetry (incl. the SRTE label-probe extension).
	{SourceINT, TypeINTRateMismatch}: ClassRootCause,
	{SourceINT, TypePacketLoss}:      ClassFailure,
	{SourceINT, TypeBitFlip}:         ClassFailure,
	{SourceINT, TypeLinkDown}:        ClassRootCause,

	// PTP clock monitoring.
	{SourcePTP, TypeClockUnsync}: ClassAbnormal,

	// Route monitoring (control plane).
	{SourceRouteMonitoring, TypeRouteLoss}:   ClassRootCause,
	{SourceRouteMonitoring, TypeRouteHijack}: ClassRootCause,
	{SourceRouteMonitoring, TypeRouteLeak}:   ClassRootCause,

	// Modification events.
	{SourceModificationEvents, TypeModificationFailed}: ClassRootCause,
	{SourceModificationEvents, TypeModificationDone}:   ClassInfo,

	// Patrol inspection.
	{SourcePatrolInspection, TypePatrolAnomaly}: ClassRootCause,
	{SourcePatrolInspection, TypeConfigDrift}:   ClassInfo,
}

// Classify returns the catalog class for a (source, type) pair. Unknown
// pairs are ClassInfo: an unclassified alert is displayed but never counted
// toward incident thresholds.
func Classify(source Source, typ string) Class {
	if c, ok := catalog[TypeKey{source, typ}]; ok {
		return c
	}
	return ClassInfo
}

// KnownTypes returns every cataloged (source, type) pair. The slice is
// freshly allocated and unordered.
func KnownTypes() []TypeKey {
	out := make([]TypeKey, 0, len(catalog))
	for k := range catalog {
		out = append(out, k)
	}
	return out
}

// CatalogSize reports how many (source, type) pairs are classified.
func CatalogSize() int { return len(catalog) }
