// Package experimentsutil holds small shared test/experiment generators
// that would otherwise create import cycles between the analysis packages
// and the experiment harness.
package experimentsutil

import (
	"math/rand"
	"sort"
	"time"

	"skynet/internal/alert"
	"skynet/internal/topology"
)

// RandomAlerts produces n random structured alerts over the topology:
// valid, cataloged types at real device locations, with timestamps
// marching forward a few seconds at a time. Used by property tests.
func RandomAlerts(topo *topology.Topology, r *rand.Rand, n int, start time.Time) []alert.Alert {
	types := alert.KnownTypes()
	// KnownTypes iterates a map; sort so the same seed draws the same
	// stream.
	sort.Slice(types, func(i, j int) bool {
		if types[i].Source != types[j].Source {
			return types[i].Source < types[j].Source
		}
		return types[i].Type < types[j].Type
	})
	out := make([]alert.Alert, n)
	at := start
	for i := range out {
		at = at.Add(time.Duration(r.Intn(5)) * time.Second)
		k := types[r.Intn(len(types))]
		d := topo.Device(topology.DeviceID(r.Intn(topo.NumDevices())))
		out[i] = alert.Alert{
			ID:       uint64(i + 1),
			Source:   k.Source,
			Type:     k.Type,
			Class:    alert.Classify(k.Source, k.Type),
			Time:     at,
			End:      at.Add(time.Duration(r.Intn(30)) * time.Second),
			Location: d.Path,
			Value:    r.Float64() * 0.6,
			Count:    1 + r.Intn(3),
		}
	}
	return out
}
