package zoomin

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/incident"
)

var epoch = time.Date(2024, 7, 2, 11, 45, 0, 0, time.UTC)

func cluster(i int) hierarchy.Path {
	return hierarchy.MustNew("RG01", "CT01", "LS01", "ST01", fmt.Sprintf("CL%02d", i))
}

// figure7Samples reproduces the Figure 7 matrix: cluster 2 is the hot
// spot — its row and column are dark, everything else is clean.
func figure7Samples(n int, hot int, loss float64) []Sample {
	var out []Sample
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			l := 0.0
			if i == hot || j == hot {
				l = loss
			}
			out = append(out, Sample{Src: cluster(i), Dst: cluster(j), Loss: l})
		}
	}
	return out
}

func TestBuildMatrixBasics(t *testing.T) {
	samples := figure7Samples(4, 2, 0.1)
	m := BuildMatrix(samples, hierarchy.LevelCluster)
	if m.Size() != 4 {
		t.Fatalf("size = %d", m.Size())
	}
	if got := m.Loss(cluster(0), cluster(2)); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("Loss(0,2) = %v", got)
	}
	if got := m.Loss(cluster(0), cluster(1)); got != 0 {
		t.Errorf("Loss(0,1) = %v, want 0", got)
	}
	if got := m.Loss(hierarchy.MustNew("nope"), cluster(1)); got != 0 {
		t.Errorf("unknown src loss = %v", got)
	}
	if len(m.Locations()) != 4 {
		t.Error("locations wrong")
	}
}

func TestMatrixAggregation(t *testing.T) {
	// Two clusters in the same site collapse to one site-level index.
	samples := []Sample{
		{Src: cluster(1), Dst: cluster(2), Loss: 0.5},
	}
	m := BuildMatrix(samples, hierarchy.LevelSite)
	if m.Size() != 1 {
		t.Errorf("site-level size = %d, want 1 (self-cell dropped)", m.Size())
	}
	// At cluster level they are distinct.
	m2 := BuildMatrix(samples, hierarchy.LevelCluster)
	if m2.Size() != 2 {
		t.Errorf("cluster-level size = %d", m2.Size())
	}
}

func TestMatrixMeansCells(t *testing.T) {
	samples := []Sample{
		{Src: cluster(1), Dst: cluster(2), Loss: 0.2},
		{Src: cluster(1), Dst: cluster(2), Loss: 0.4},
	}
	m := BuildMatrix(samples, hierarchy.LevelCluster)
	if got := m.Loss(cluster(1), cluster(2)); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("mean = %v, want 0.3", got)
	}
}

func TestFocalPointFindsHotSpot(t *testing.T) {
	m := BuildMatrix(figure7Samples(6, 2, 0.12), hierarchy.LevelCluster)
	focal, ok := m.FocalPoint(DefaultConfig())
	if !ok {
		t.Fatal("no focal point in a textbook Figure 7 matrix")
	}
	if focal != cluster(2) {
		t.Errorf("focal = %v, want %v", focal, cluster(2))
	}
}

func TestFocalPointRejectsUniformChaos(t *testing.T) {
	// Everything lossy: no single location dominates.
	var samples []Sample
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j {
				samples = append(samples, Sample{Src: cluster(i), Dst: cluster(j), Loss: 0.2})
			}
		}
	}
	m := BuildMatrix(samples, hierarchy.LevelCluster)
	if _, ok := m.FocalPoint(DefaultConfig()); ok {
		t.Error("uniform chaos should not produce a focal point")
	}
}

func TestFocalPointCleanMatrix(t *testing.T) {
	m := BuildMatrix(figure7Samples(4, 2, 0.001), hierarchy.LevelCluster) // below DarkLoss
	if _, ok := m.FocalPoint(DefaultConfig()); ok {
		t.Error("clean matrix should have no focal point")
	}
	empty := BuildMatrix(nil, hierarchy.LevelCluster)
	if _, ok := empty.FocalPoint(DefaultConfig()); ok {
		t.Error("empty matrix should have no focal point")
	}
}

func mkEntry(src alert.Source, typ string, loc hierarchy.Path) alert.Alert {
	return alert.Alert{
		Source: src, Type: typ, Class: alert.Classify(src, typ),
		Time: epoch, End: epoch, Location: loc, Count: 1,
	}
}

func TestRefineMatrixWins(t *testing.T) {
	site := cluster(0).Parent()
	in := incident.New(1, site)
	in.Add(mkEntry(alert.SourcePing, alert.TypePacketLoss, site))
	mech := NewRefiner(DefaultConfig()).Refine(in, figure7Samples(6, 3, 0.15))
	if mech != "matrix" {
		t.Fatalf("mechanism = %q, want matrix", mech)
	}
	if in.Zoomed != cluster(3) {
		t.Errorf("zoomed = %v, want %v", in.Zoomed, cluster(3))
	}
}

func TestRefineINTWins(t *testing.T) {
	dev := cluster(1).MustChild("dev-x")
	in := incident.New(1, cluster(1))
	in.Add(mkEntry(alert.SourceINT, alert.TypeINTRateMismatch, dev))
	mech := NewRefiner(DefaultConfig()).Refine(in, nil)
	if mech != "int" || in.Zoomed != dev {
		t.Errorf("mechanism=%q zoomed=%v", mech, in.Zoomed)
	}
}

func TestRefineINTAmbiguousFallsThrough(t *testing.T) {
	in := incident.New(1, cluster(1).Parent())
	in.Add(mkEntry(alert.SourceINT, alert.TypeINTRateMismatch, cluster(1).MustChild("dev-a")))
	in.Add(mkEntry(alert.SourceINT, alert.TypeINTRateMismatch, cluster(2).MustChild("dev-b")))
	// Two sFlow loss locations share the site ancestor... but that equals
	// the root, so nothing refines.
	mech := NewRefiner(DefaultConfig()).Refine(in, nil)
	if mech != "" || !in.Zoomed.IsRoot() {
		t.Errorf("ambiguous INT should not zoom: mech=%q zoomed=%v", mech, in.Zoomed)
	}
}

func TestRefineSFlowTraceback(t *testing.T) {
	site := cluster(0).Parent()
	in := incident.New(1, site.Parent()) // logic-site root
	devA := cluster(0).MustChild("dev-a")
	devB := cluster(0).MustChild("dev-b")
	in.Add(mkEntry(alert.SourceTraffic, alert.TypePacketLoss, devA))
	in.Add(mkEntry(alert.SourceTraffic, alert.TypePacketLoss, devB))
	mech := NewRefiner(DefaultConfig()).Refine(in, nil)
	if mech != "sflow" {
		t.Fatalf("mechanism = %q, want sflow", mech)
	}
	if in.Zoomed != cluster(0) {
		t.Errorf("zoomed = %v, want common ancestor %v", in.Zoomed, cluster(0))
	}
}

func TestRefineNothingApplicable(t *testing.T) {
	in := incident.New(1, cluster(0))
	in.Add(mkEntry(alert.SourceSyslog, alert.TypeLinkDown, cluster(0).MustChild("d")))
	mech := NewRefiner(DefaultConfig()).Refine(in, nil)
	if mech != "" || !in.Zoomed.IsRoot() {
		t.Errorf("nothing should refine: mech=%q zoomed=%v", mech, in.Zoomed)
	}
}

func TestRefineIgnoresFocalOutsideRoot(t *testing.T) {
	// Focal point in a different site than the incident: matrix evidence
	// is irrelevant, no zoom from it.
	otherSite := hierarchy.MustNew("RG01", "CT01", "LS01", "ST09")
	in := incident.New(1, otherSite)
	in.Add(mkEntry(alert.SourcePing, alert.TypePacketLoss, otherSite))
	mech := NewRefiner(DefaultConfig()).Refine(in, figure7Samples(6, 3, 0.15))
	if mech == "matrix" {
		t.Error("matrix focal point outside the incident root must be ignored")
	}
}

func TestMatrixRender(t *testing.T) {
	m := BuildMatrix(figure7Samples(4, 2, 0.12), hierarchy.LevelCluster)
	out := m.Render(DefaultConfig())
	if !strings.Contains(out, "src\\dst") {
		t.Error("missing header")
	}
	// Dark cells are bracketed; the hot cluster's row and column carry
	// them.
	if !strings.Contains(out, "[12.00]") {
		t.Errorf("missing dark cell:\n%s", out)
	}
	// Diagonal renders as '-'.
	if !strings.Contains(out, "-") {
		t.Error("missing diagonal")
	}
	empty := BuildMatrix(nil, hierarchy.LevelCluster)
	if !strings.Contains(empty.Render(DefaultConfig()), "empty") {
		t.Error("empty matrix render")
	}
}
