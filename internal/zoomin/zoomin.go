// Package zoomin implements SkyNet's location zoom-in (§4.3): refining an
// incident's location using behaviour-monitoring evidence so the evaluator
// scores the right scope and operators dispatch repairs to the right spot.
// Three mechanisms run in order:
//
//  1. Reachability matrix — end-to-end ping observations arranged as a
//     src×dst loss matrix (Figure 7). A focal point — one index whose row
//     AND column are dark while the rest of the matrix is light — pins the
//     failure to that location. The matrix aggregates from cluster up to
//     region granularity.
//  2. sFlow traceback — sampled-loss alerts name specific devices; if all
//     of them sit under one node of the incident tree, that node is the
//     location.
//  3. INT test flows — a DSCP-marked flow whose input/output rates
//     disagree at a device names that device directly.
//
// When no mechanism refines the location, the incident keeps its original
// root ("emergency procedures revert to the general location").
package zoomin

import (
	"fmt"
	"sort"
	"strings"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/incident"
)

// Config tunes the zoom-in.
type Config struct {
	// DarkLoss is the loss ratio above which a matrix cell is "dark".
	DarkLoss float64
	// FocalDominance requires the focal row+column to carry at least this
	// fraction of the matrix's total darkness, so widespread chaos does
	// not get pinned to one index.
	FocalDominance float64
}

// DefaultConfig returns the production-like defaults.
func DefaultConfig() Config {
	return Config{DarkLoss: 0.03, FocalDominance: 0.8}
}

// Sample is one end-to-end loss observation between two cluster locations.
type Sample struct {
	Src, Dst hierarchy.Path
	Loss     float64
}

// Matrix is a reachability matrix at some aggregation level.
type Matrix struct {
	level hierarchy.Level
	idx   map[hierarchy.Path]int
	locs  []hierarchy.Path
	// sum and count accumulate mean loss per (src, dst) cell.
	sum   [][]float64
	count [][]int
}

// BuildMatrix aggregates samples to the given hierarchy level. Samples
// whose endpoints truncate to the same location are ignored (self-cells
// say nothing about inter-location reachability).
func BuildMatrix(samples []Sample, level hierarchy.Level) *Matrix {
	m := &Matrix{level: level, idx: make(map[hierarchy.Path]int)}
	at := func(p hierarchy.Path) int {
		q := p.Truncate(level)
		i, ok := m.idx[q]
		if !ok {
			i = len(m.locs)
			m.idx[q] = i
			m.locs = append(m.locs, q)
			for r := range m.sum {
				m.sum[r] = append(m.sum[r], 0)
				m.count[r] = append(m.count[r], 0)
			}
			m.sum = append(m.sum, make([]float64, len(m.locs)))
			m.count = append(m.count, make([]int, len(m.locs)))
		}
		return i
	}
	for _, s := range samples {
		i, j := at(s.Src), at(s.Dst)
		if i == j {
			continue
		}
		m.sum[i][j] += s.Loss
		m.count[i][j]++
	}
	return m
}

// Size returns the matrix dimension.
func (m *Matrix) Size() int { return len(m.locs) }

// Locations returns the matrix index locations, in insertion order.
func (m *Matrix) Locations() []hierarchy.Path {
	out := make([]hierarchy.Path, len(m.locs))
	copy(out, m.locs)
	return out
}

// Loss returns the mean loss of cell (src, dst), or 0 when unobserved.
func (m *Matrix) Loss(src, dst hierarchy.Path) float64 {
	i, ok := m.idx[src.Truncate(m.level)]
	if !ok {
		return 0
	}
	j, ok := m.idx[dst.Truncate(m.level)]
	if !ok {
		return 0
	}
	return m.cell(i, j)
}

func (m *Matrix) cell(i, j int) float64 {
	if m.count[i][j] == 0 {
		return 0
	}
	return m.sum[i][j] / float64(m.count[i][j])
}

// FocalPoint finds the hot spot of Figure 7: the location whose row and
// column darkness dominate the matrix. ok is false when no single
// location dominates.
func (m *Matrix) FocalPoint(cfg Config) (hierarchy.Path, bool) {
	n := len(m.locs)
	if n < 2 {
		return hierarchy.Path{}, false
	}
	touch := make([]int, n)
	darkCells := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if m.cell(i, j) < cfg.DarkLoss {
				continue
			}
			darkCells++
			touch[i]++
			touch[j]++
		}
	}
	if darkCells == 0 {
		return hierarchy.Path{}, false
	}
	best := 0
	for i := 1; i < n; i++ {
		if touch[i] > touch[best] {
			best = i
		}
	}
	// A true focal point participates in (nearly) every dark cell; under
	// uniform chaos each index touches only 2/n of them.
	if float64(touch[best])/float64(darkCells) < cfg.FocalDominance {
		return hierarchy.Path{}, false
	}
	return m.locs[best], true
}

// Refiner runs the three zoom-in mechanisms over incidents.
type Refiner struct {
	cfg Config
}

// NewRefiner builds a refiner.
func NewRefiner(cfg Config) *Refiner { return &Refiner{cfg: cfg} }

// Refine determines the refined location for an incident given the latest
// ping samples. It sets in.Zoomed when a mechanism succeeds and reports
// which mechanism won ("matrix", "int", "sflow", or "").
func (r *Refiner) Refine(in *incident.Incident, samples []Sample) string {
	// Mechanism 1: reachability matrix, swept from fine to coarse until a
	// focal point inside the incident's scope emerges.
	relevant := samples[:0:0]
	for _, s := range samples {
		if in.Root.Contains(s.Src) || in.Root.Contains(s.Dst) {
			relevant = append(relevant, s)
		}
	}
	for level := hierarchy.LevelCluster; level >= hierarchy.LevelRegion; level-- {
		m := BuildMatrix(relevant, level)
		if focal, ok := m.FocalPoint(r.cfg); ok && in.Root.Contains(focal) {
			in.Zoomed = focal
			return "matrix"
		}
	}
	// Mechanism 3 runs before sFlow when it names a single device: INT is
	// exact when it fires.
	if dev, ok := singleLocationOf(in, alert.SourceINT, alert.TypeINTRateMismatch); ok {
		in.Zoomed = dev
		return "int"
	}
	// Mechanism 2: sFlow traceback to the common ancestor of sampled-loss
	// devices.
	if anc, ok := commonLossAncestor(in); ok && in.Root.Contains(anc) && anc != in.Root {
		in.Zoomed = anc
		return "sflow"
	}
	return ""
}

// singleLocationOf returns the location of entries matching (src, typ)
// when they all share one location.
func singleLocationOf(in *incident.Incident, src alert.Source, typ string) (hierarchy.Path, bool) {
	var loc hierarchy.Path
	found := false
	slab := in.EntrySlab()
	for i := range slab {
		a := &slab[i].Alert
		if a.Source != src || a.Type != typ {
			continue
		}
		if found && a.Location != loc {
			return hierarchy.Path{}, false
		}
		loc, found = a.Location, true
	}
	return loc, found
}

// commonLossAncestor computes the deepest common ancestor of the sFlow
// packet-loss locations.
func commonLossAncestor(in *incident.Incident) (hierarchy.Path, bool) {
	var locs []hierarchy.Path
	slab := in.EntrySlab()
	for i := range slab {
		a := &slab[i].Alert
		if a.Source == alert.SourceTraffic && a.Type == alert.TypePacketLoss {
			locs = append(locs, a.Location)
		}
	}
	if len(locs) == 0 {
		return hierarchy.Path{}, false
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i].Compare(locs[j]) < 0 })
	ca := locs[0]
	for _, p := range locs[1:] {
		ca = ca.CommonAncestor(p)
	}
	return ca, true
}

// Render draws the matrix as a Figure 7-style text heatmap: rows are
// sources, columns destinations, cells the mean loss percentage. Dark
// cells (≥ the config's DarkLoss) are bracketed so the focal row/column
// pattern is visible in a terminal.
func (m *Matrix) Render(cfg Config) string {
	n := len(m.locs)
	if n == 0 {
		return "(empty reachability matrix)\n"
	}
	// Order rows/columns by location for a stable picture.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return m.locs[order[a]].Compare(m.locs[order[b]]) < 0
	})
	label := func(i int) string {
		leaf := m.locs[i].Leaf()
		if len(leaf) > 10 {
			leaf = leaf[:10]
		}
		return leaf
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "src\\dst")
	for _, j := range order {
		fmt.Fprintf(&b, "%10s", label(j))
	}
	b.WriteByte('\n')
	for _, i := range order {
		fmt.Fprintf(&b, "%-12s", label(i))
		for _, j := range order {
			if i == j {
				fmt.Fprintf(&b, "%10s", "-")
				continue
			}
			v := m.cell(i, j)
			cell := fmt.Sprintf("%.2f", v*100)
			if v >= cfg.DarkLoss {
				cell = "[" + cell + "]"
			}
			fmt.Fprintf(&b, "%10s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
