package prof

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"skynet/internal/telemetry"
)

func profDirs(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "prof-") {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestCollectorCaptureArchivePrune drives three synchronous windows
// through a collector with MaxWindows=2 and checks the full contract:
// archives written, oldest pruned, telemetry published, the in-memory
// ring bounded, and WriteLatest replaying the cached CPU bytes.
func TestCollectorCaptureArchivePrune(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.New()
	c := NewCollector(CollectorConfig{
		Dir:        dir,
		Interval:   time.Minute,
		Window:     30 * time.Millisecond,
		MaxWindows: 2,
		Keep:       2,
		Registry:   reg,
	})
	for i := 0; i < 3; i++ {
		w := c.CaptureWindow()
		if w.Err != "" {
			t.Fatalf("window %d failed: %s", i, w.Err)
		}
		if w.Seq != i {
			t.Errorf("window %d has seq %d", i, w.Seq)
		}
		if w.Dir == "" {
			t.Fatalf("window %d was not archived", i)
		}
		if _, err := os.Stat(filepath.Join(w.Dir, "cpu.pprof")); err != nil {
			t.Errorf("window %d: %v", i, err)
		}
		if _, err := os.Stat(filepath.Join(w.Dir, "window.json")); err != nil {
			t.Errorf("window %d: %v", i, err)
		}
	}

	// Retention: three windows captured, only the newest two on disk.
	dirs := profDirs(t, dir)
	if len(dirs) != 2 {
		t.Fatalf("retained %d window dirs %v, want 2", len(dirs), dirs)
	}
	for _, name := range dirs {
		if strings.HasSuffix(name, "-000000") {
			t.Errorf("oldest window %s survived pruning", name)
		}
	}

	captures, errors := c.Counts()
	if captures != 3 || errors != 0 {
		t.Errorf("Counts() = %d, %d, want 3, 0", captures, errors)
	}
	if ws := c.Windows(); len(ws) != 2 { // Keep=2 bounds the ring
		t.Errorf("Windows() kept %d summaries, want 2", len(ws))
	}
	last, ok := c.Latest()
	if !ok || last.Seq != 2 {
		t.Errorf("Latest() = %+v ok=%t, want seq 2", last, ok)
	}
	if v := reg.Counter("skynet_prof_windows_total", "").Value(); v != 3 {
		t.Errorf("skynet_prof_windows_total = %d, want 3", v)
	}

	// WriteLatest copies the cached window — no fresh capture.
	out := t.TempDir()
	c.WriteLatest(out)
	cpu, err := os.ReadFile(filepath.Join(out, "cpu.pprof"))
	if err != nil {
		t.Fatalf("WriteLatest wrote nothing: %v", err)
	}
	if _, err := ParseProfile(cpu); err != nil {
		t.Errorf("WriteLatest bytes do not parse: %v", err)
	}
}

// TestCollectorCompetingProfile pins the error path: when another CPU
// profile is already running (the /debug/pprof/profile case), the window
// records the failure, counts it, and archives nothing.
func TestCollectorCompetingProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Fatalf("start competing profile: %v", err)
	}
	defer pprof.StopCPUProfile()

	dir := t.TempDir()
	reg := telemetry.New()
	c := NewCollector(CollectorConfig{Dir: dir, Window: 10 * time.Millisecond, Registry: reg})
	w := c.CaptureWindow()
	if w.Err == "" {
		t.Fatal("capture under a competing profile reported success")
	}
	if w.Dir != "" {
		t.Errorf("failed window archived to %s", w.Dir)
	}
	if captures, errors := c.Counts(); captures != 0 || errors != 1 {
		t.Errorf("Counts() = %d, %d, want 0, 1", captures, errors)
	}
	if v := reg.Counter("skynet_prof_capture_errors_total", "").Value(); v != 1 {
		t.Errorf("skynet_prof_capture_errors_total = %d, want 1", v)
	}
	if dirs := profDirs(t, dir); len(dirs) != 0 {
		t.Errorf("failed window left archive dirs %v", dirs)
	}
	// No good window yet: WriteLatest must write nothing.
	out := t.TempDir()
	c.WriteLatest(out)
	if _, err := os.Stat(filepath.Join(out, "cpu.pprof")); !os.IsNotExist(err) {
		t.Error("WriteLatest wrote a cpu.pprof with no captured window")
	}

	// Failed windows still claim unique sequence numbers — /api/profile
	// consumers key on Seq.
	if w2 := c.CaptureWindow(); w2.Seq != w.Seq+1 {
		t.Errorf("second failed window Seq = %d, want %d", w2.Seq, w.Seq+1)
	}
}

// TestCollectorStopWithoutStart pins that Stop on a never-started
// collector returns instead of blocking on the absent run goroutine.
func TestCollectorStopWithoutStart(t *testing.T) {
	c := NewCollector(CollectorConfig{})
	stopped := make(chan struct{})
	go func() {
		c.Stop()
		close(stopped)
	}()
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop() on a never-started collector blocked")
	}
}

// TestCollectorStartStop exercises the background loop: Start captures a
// first window immediately, Stop interrupts the wait and joins the
// goroutine.
func TestCollectorStartStop(t *testing.T) {
	c := NewCollector(CollectorConfig{Interval: time.Minute, Window: 20 * time.Millisecond})
	c.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := c.Latest(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never captured a window")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
	if captures, _ := c.Counts(); captures < 1 {
		t.Errorf("captures = %d, want >= 1", captures)
	}
}

// TestCollectorConfigDefaults pins the zero-value clamps.
func TestCollectorConfigDefaults(t *testing.T) {
	cfg := CollectorConfig{}.withDefaults()
	if cfg.Interval != time.Minute || cfg.Window != 5*time.Second {
		t.Errorf("defaults = interval %v window %v", cfg.Interval, cfg.Window)
	}
	if cfg.MaxWindows != 16 || cfg.Keep != 32 {
		t.Errorf("defaults = maxwindows %d keep %d", cfg.MaxWindows, cfg.Keep)
	}
	cfg = CollectorConfig{Interval: 10 * time.Second, Window: time.Minute}.withDefaults()
	if cfg.Window != 5*time.Second {
		t.Errorf("window %v not clamped below interval", cfg.Window)
	}
}
