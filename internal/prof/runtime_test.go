package prof

import (
	"runtime"
	"strings"
	"testing"

	"skynet/internal/telemetry"
)

// TestRuntimeSampler drives a GC cycle through the runtime/metrics
// sampler and checks the gauges land with sane values.
func TestRuntimeSampler(t *testing.T) {
	reg := telemetry.New()
	r := NewRuntime(reg)
	runtime.GC()
	runtime.GC()
	r.Refresh()

	vals := make(map[string]float64)
	for _, h := range reg.Handles() {
		vals[h.Name] = h.Read()
	}
	if vals["skynet_runtime_goroutines"] < 1 {
		t.Errorf("goroutines = %v, want >= 1", vals["skynet_runtime_goroutines"])
	}
	if vals["skynet_runtime_heap_live_bytes"] <= 0 {
		t.Errorf("heap live = %v, want > 0", vals["skynet_runtime_heap_live_bytes"])
	}
	if vals["skynet_runtime_heap_goal_bytes"] <= 0 {
		t.Errorf("heap goal = %v, want > 0", vals["skynet_runtime_heap_goal_bytes"])
	}
	// Two forced GC cycles ran after the constructor's baseline read.
	if vals["skynet_runtime_gc_cycles_total"] < 2 {
		t.Errorf("gc cycles = %v, want >= 2", vals["skynet_runtime_gc_cycles_total"])
	}
	if vals["skynet_runtime_gc_pause_max_seconds"] < 0 {
		t.Errorf("gc pause = %v, want >= 0", vals["skynet_runtime_gc_pause_max_seconds"])
	}

	// Every runtime series must sit behind the deterministic-replay
	// filter prefix so replay snapshots stay bit-identical.
	for name := range vals {
		if !strings.HasPrefix(name, "skynet_runtime_") {
			t.Errorf("runtime sampler registered out-of-prefix series %s", name)
		}
	}
}

// TestRuntimeRefreshIdempotent checks repeated refreshes keep working —
// the histogram delta logic must tolerate quiet intervals with no GC and
// no scheduling events.
func TestRuntimeRefreshIdempotent(t *testing.T) {
	reg := telemetry.New()
	r := NewRuntime(reg)
	for i := 0; i < 5; i++ {
		r.Refresh()
	}
	runtime.GC()
	r.Refresh()
}

// TestRuntimeNilSafe pins the optional-observer contract for the engine
// hot path.
func TestRuntimeNilSafe(t *testing.T) {
	var r *Runtime
	r.Refresh()
}

// TestReadRuntimeStats covers the /api/health runtime panel snapshot.
func TestReadRuntimeStats(t *testing.T) {
	runtime.GC()
	s := ReadRuntimeStats()
	if s.Goroutines < 1 {
		t.Errorf("goroutines = %d, want >= 1", s.Goroutines)
	}
	if s.HeapLiveBytes == 0 {
		t.Error("heap live bytes = 0")
	}
	if s.HeapSysBytes == 0 {
		t.Error("heap sys bytes = 0")
	}
	if s.GCCycles == 0 {
		t.Error("gc cycles = 0 after forced GC")
	}
	if s.LastGCUnixNs == 0 {
		t.Error("last gc timestamp = 0 after forced GC")
	}
}
