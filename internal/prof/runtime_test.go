package prof

import (
	"math"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"

	"skynet/internal/telemetry"
)

// TestRuntimeSampler drives a GC cycle through the runtime/metrics
// sampler and checks the gauges land with sane values.
func TestRuntimeSampler(t *testing.T) {
	reg := telemetry.New()
	r := NewRuntime(reg)
	runtime.GC()
	runtime.GC()
	r.Refresh()

	vals := make(map[string]float64)
	for _, h := range reg.Handles() {
		vals[h.Name] = h.Read()
	}
	if vals["skynet_runtime_goroutines"] < 1 {
		t.Errorf("goroutines = %v, want >= 1", vals["skynet_runtime_goroutines"])
	}
	if vals["skynet_runtime_heap_live_bytes"] <= 0 {
		t.Errorf("heap live = %v, want > 0", vals["skynet_runtime_heap_live_bytes"])
	}
	if vals["skynet_runtime_heap_goal_bytes"] <= 0 {
		t.Errorf("heap goal = %v, want > 0", vals["skynet_runtime_heap_goal_bytes"])
	}
	// Two forced GC cycles ran after the constructor's baseline read.
	if vals["skynet_runtime_gc_cycles_total"] < 2 {
		t.Errorf("gc cycles = %v, want >= 2", vals["skynet_runtime_gc_cycles_total"])
	}
	if vals["skynet_runtime_gc_pause_max_seconds"] < 0 {
		t.Errorf("gc pause = %v, want >= 0", vals["skynet_runtime_gc_pause_max_seconds"])
	}

	// Every runtime series must sit behind the deterministic-replay
	// filter prefix so replay snapshots stay bit-identical.
	for name := range vals {
		if !strings.HasPrefix(name, "skynet_runtime_") {
			t.Errorf("runtime sampler registered out-of-prefix series %s", name)
		}
	}
}

// TestRuntimeRefreshIdempotent checks repeated refreshes keep working —
// the histogram delta logic must tolerate quiet intervals with no GC and
// no scheduling events.
func TestRuntimeRefreshIdempotent(t *testing.T) {
	reg := telemetry.New()
	r := NewRuntime(reg)
	for i := 0; i < 5; i++ {
		r.Refresh()
	}
	runtime.GC()
	r.Refresh()
}

// TestHistDeltaAfterBaseline pins the delta computation against the
// in-place prev reuse: snapshotCounts hands back prev's own backing
// array, so a second call must still see the events added since the
// first — not compare the histogram against itself and report 0.
func TestHistDeltaAfterBaseline(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{3, 1, 0},
		Buckets: []float64{0, 0.001, 0.01, math.Inf(1)},
	}

	// Establish a baseline; prev now aliases the returned slice.
	_, prev := histDeltaMax(h, nil)
	_, prev = histDeltaMax(h, prev)

	// Inject 10 new events into the middle bucket (upper edge 0.01).
	h.Counts[1] += 10
	max, prev := histDeltaMax(h, prev)
	if max != 0.01 {
		t.Errorf("histDeltaMax after injecting events = %v, want 0.01", max)
	}
	// Quiet interval: no new events, delta collapses back to 0.
	if max, prev = histDeltaMax(h, prev); max != 0 {
		t.Errorf("histDeltaMax with no new events = %v, want 0", max)
	}

	// Same aliasing hazard on the quantile path.
	h.Counts[0] += 99
	h.Counts[2] += 1
	p99, prev := histDeltaQuantile(h, prev, 0.99)
	if p99 != 0.001 {
		t.Errorf("histDeltaQuantile(0.99) = %v, want 0.001 (99 of 100 events in bucket 0)", p99)
	}
	if p100, _ := histDeltaQuantile(h, prev, 0.99); p100 != 0 {
		t.Errorf("histDeltaQuantile with no new events = %v, want 0", p100)
	}
}

// TestRuntimeGCPauseDelta drives the full Refresh path: a forced GC
// between two refreshes must surface a nonzero pause on the second one
// (the tick where the aliased-baseline bug zeroed every delta).
func TestRuntimeGCPauseDelta(t *testing.T) {
	reg := telemetry.New()
	r := NewRuntime(reg)
	r.Refresh() // quiet tick so prevPause has been through the reuse path
	runtime.GC()
	r.Refresh()

	for _, h := range reg.Handles() {
		if h.Name == "skynet_runtime_gc_pause_max_seconds" {
			if v := h.Read(); v <= 0 {
				t.Errorf("gc pause max after forced GC = %v, want > 0", v)
			}
			return
		}
	}
	t.Fatal("skynet_runtime_gc_pause_max_seconds not registered")
}

// TestRuntimeNilSafe pins the optional-observer contract for the engine
// hot path.
func TestRuntimeNilSafe(t *testing.T) {
	var r *Runtime
	r.Refresh()
}

// TestReadRuntimeStats covers the /api/health runtime panel snapshot.
func TestReadRuntimeStats(t *testing.T) {
	runtime.GC()
	s := ReadRuntimeStats()
	if s.Goroutines < 1 {
		t.Errorf("goroutines = %d, want >= 1", s.Goroutines)
	}
	if s.HeapLiveBytes == 0 {
		t.Error("heap live bytes = 0")
	}
	if s.HeapSysBytes == 0 {
		t.Error("heap sys bytes = 0")
	}
	if s.GCCycles == 0 {
		t.Error("gc cycles = 0 after forced GC")
	}
	if s.LastGCUnixNs == 0 {
		t.Error("last gc timestamp = 0 after forced GC")
	}
}
