package prof

import (
	"bytes"
	"context"
	"runtime/pprof"
	"sync/atomic"
	"testing"
	"time"

	"skynet/internal/par"
)

// goroutineProfile captures the live goroutine profile (debug=0 proto
// form, which carries pprof labels) and decodes it with the package's own
// parser.
func goroutineProfile(t *testing.T) *Profile {
	t.Helper()
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 0); err != nil {
		t.Fatalf("write goroutine profile: %v", err)
	}
	p, err := ParseProfile(buf.Bytes())
	if err != nil {
		t.Fatalf("parse goroutine profile: %v", err)
	}
	return p
}

// clearLabels resets the test goroutine's label set so one test's stage
// labels cannot leak into the next.
func clearLabels() { pprof.SetGoroutineLabels(context.Background()) }

// captureUnderFanOut runs a `workers`-wide fan-out through fork and
// captures the goroutine profile from the last task to start, while the
// other workers are parked with their labels applied. Blocking the first
// workers pins each task to a distinct worker goroutine, so the capture
// must observe every shard index.
func captureUnderFanOut(t *testing.T, workers int, fork func(n int, task func(i int))) *Profile {
	t.Helper()
	var (
		arrived atomic.Int32
		release = make(chan struct{})
		prof    *Profile
	)
	fork(workers, func(i int) {
		if int(arrived.Add(1)) == workers {
			prof = goroutineProfile(t)
			close(release)
			return
		}
		<-release
	})
	if prof == nil {
		t.Fatal("fan-out never captured a profile")
	}
	return prof
}

// shardSet collects the shard label values of samples carrying the given
// stage label.
func shardSet(p *Profile, stage string) map[string]bool {
	shards := make(map[string]bool)
	for _, s := range p.Samples {
		if s.Labels[LabelStage] == stage {
			if shard, ok := s.Labels[LabelShard]; ok {
				shards[shard] = true
			}
		}
	}
	return shards
}

// TestStageLabelsSurviveParDo is the label-propagation contract: worker
// goroutines forked by par.Do while the engine goroutine is inside a
// labeled stage must carry the stage label plus their own shard index.
func TestStageLabelsSurviveParDo(t *testing.T) {
	defer clearLabels()
	l := NewLabeler(4)
	l.Enter(StageClassify)
	defer l.Exit()

	p := captureUnderFanOut(t, 4, func(n int, task func(i int)) {
		par.Do(4, n, task)
	})
	shards := shardSet(p, "classify")
	for _, want := range []string{"0", "1", "2", "3"} {
		if !shards[want] {
			t.Errorf("par.Do: no goroutine labeled stage=classify shard=%s (got %v)", want, shards)
		}
	}
}

// TestStageLabelsSurviveParDoTimed repeats the propagation check through
// the timed fork variant (the spans-instrumented path the preprocessor
// and evaluator actually use).
func TestStageLabelsSurviveParDoTimed(t *testing.T) {
	defer clearLabels()
	l := NewLabeler(4)
	l.Enter(StageRefineScore)
	defer l.Exit()

	var timed atomic.Int32
	done := func(i int, start time.Time, d time.Duration) { timed.Add(1) }
	p := captureUnderFanOut(t, 4, func(n int, task func(i int)) {
		par.DoTimed(4, n, done, task)
	})
	shards := shardSet(p, "refine_score")
	for _, want := range []string{"0", "1", "2", "3"} {
		if !shards[want] {
			t.Errorf("par.DoTimed: no goroutine labeled stage=refine_score shard=%s (got %v)", want, shards)
		}
	}
	if timed.Load() != 4 {
		t.Errorf("DoTimed ran %d timing callbacks, want 4", timed.Load())
	}
}

// TestEpisodeLabelTagsWorkers pins the flood-episode dimension: while an
// episode is open every stage context — and therefore every forked
// worker — must carry the episode label, and closing the episode must
// drop it from freshly built contexts.
func TestEpisodeLabelTagsWorkers(t *testing.T) {
	defer clearLabels()
	l := NewLabeler(2)
	l.SetEpisode(42)
	l.Enter(StageConsolidate)

	p := captureUnderFanOut(t, 2, func(n int, task func(i int)) {
		par.Do(2, n, task)
	})
	l.Exit()

	found := false
	for _, s := range p.Samples {
		if s.Labels[LabelStage] == "consolidate" && s.Labels[LabelEpisode] == "42" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no worker carried episode=42 while the episode was open")
	}

	l.SetEpisode(0)
	l.Enter(StageConsolidate)
	p = goroutineProfile(t)
	l.Exit()
	for _, s := range p.Samples {
		if s.Labels[LabelEpisode] == "42" {
			t.Error("episode=42 label survived SetEpisode(0)")
		}
	}
}

// TestLabelerNilSafe pins the optional-observer contract: a nil labeler
// must absorb every call so the engine hot path can invoke it
// unconditionally.
func TestLabelerNilSafe(t *testing.T) {
	var l *Labeler
	l.Enter(StageSOP)
	l.Exit()
	l.SetEpisode(7)
}

// TestStageNames pins the label vocabulary shared by the collector's
// telemetry, /api/profile, and skynet-top.
func TestStageNames(t *testing.T) {
	want := []string{
		"classify", "consolidate", "locator_addbatch",
		"locator_expire", "refine_score", "sop",
	}
	got := StageNames()
	if len(got) != len(want) {
		t.Fatalf("StageNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stage %d = %q, want %q", i, got[i], want[i])
		}
		if Stage(i).String() != want[i] {
			t.Errorf("Stage(%d).String() = %q, want %q", i, Stage(i).String(), want[i])
		}
	}
	if Stage(250).String() != "unknown" {
		t.Errorf("out-of-range stage stringified as %q", Stage(250).String())
	}
}
