package prof

import (
	"math"
	"runtime"
	"runtime/metrics"
	"time"

	"skynet/internal/telemetry"
)

// Runtime samples the Go runtime's own health via runtime/metrics and
// publishes it through the telemetry registry, from where the TSDB
// sampler gives it tick-indexed history:
//
//	skynet_runtime_gc_pause_max_seconds     worst GC pause since last refresh
//	skynet_runtime_gc_cycles_total          completed GC cycles
//	skynet_runtime_heap_live_bytes          live heap objects
//	skynet_runtime_heap_goal_bytes          GC pacer heap goal
//	skynet_runtime_goroutines               live goroutines
//	skynet_runtime_sched_latency_p99_seconds  p99 runnable-wait since last refresh
//	skynet_runtime_mutex_wait_seconds       cumulative mutex wait (all goroutines)
//
// Determinism contract (DESIGN.md §11): everything here measures the
// host machine, not the alert stream, so the skynet_runtime_ prefix is
// excluded by tsdb.DeterministicFilter — replay history snapshots stay
// byte-identical with the sampler enabled. The daemon's unfiltered store
// records them all.
//
// Refresh is called once per tick from the engine goroutine: one
// metrics.Read over a fixed sample slice, zero steady-state allocations.
type Runtime struct {
	samples []metrics.Sample

	// histogram delta state: previous cumulative bucket counts
	prevPause []uint64
	prevSched []uint64

	prevCycles    uint64
	prevMutexWait float64

	gcPauseMax *telemetry.Gauge
	gcCycles   *telemetry.Counter
	heapLive   *telemetry.Gauge
	heapGoal   *telemetry.Gauge
	goroutines *telemetry.Gauge
	schedP99   *telemetry.Gauge
	mutexWait  *telemetry.Gauge
}

// Indexes into Runtime.samples — keep in sync with runtimeMetricNames.
const (
	rmGCPauses = iota
	rmGCCycles
	rmHeapLive
	rmHeapGoal
	rmGoroutines
	rmSchedLat
	rmMutexWait
	numRuntimeMetrics
)

var runtimeMetricNames = [numRuntimeMetrics]string{
	rmGCPauses:   "/gc/pauses:seconds",
	rmGCCycles:   "/gc/cycles/total:gc-cycles",
	rmHeapLive:   "/memory/classes/heap/objects:bytes",
	rmHeapGoal:   "/gc/heap/goal:bytes",
	rmGoroutines: "/sched/goroutines:goroutines",
	rmSchedLat:   "/sched/latencies:seconds",
	rmMutexWait:  "/sync/mutex/wait/total:seconds",
}

// NewRuntime registers the skynet_runtime_ series on reg and returns the
// sampler. The first Refresh establishes histogram baselines.
func NewRuntime(reg *telemetry.Registry) *Runtime {
	r := &Runtime{samples: make([]metrics.Sample, numRuntimeMetrics)}
	for i := range r.samples {
		r.samples[i].Name = runtimeMetricNames[i]
	}
	r.gcPauseMax = reg.Gauge("skynet_runtime_gc_pause_max_seconds",
		"Worst GC stop-the-world pause observed since the previous tick.")
	r.gcCycles = reg.Counter("skynet_runtime_gc_cycles_total",
		"Completed GC cycles.")
	r.heapLive = reg.Gauge("skynet_runtime_heap_live_bytes",
		"Bytes of live heap objects.")
	r.heapGoal = reg.Gauge("skynet_runtime_heap_goal_bytes",
		"GC pacer heap-size goal.")
	r.goroutines = reg.Gauge("skynet_runtime_goroutines",
		"Live goroutines.")
	r.schedP99 = reg.Gauge("skynet_runtime_sched_latency_p99_seconds",
		"p99 time goroutines spent runnable-but-waiting since the previous tick.")
	r.mutexWait = reg.Gauge("skynet_runtime_mutex_wait_seconds",
		"Cumulative time goroutines have blocked on mutexes.")
	r.Refresh()
	return r
}

// Refresh re-reads the runtime metrics and updates the registry. Engine
// goroutine, once per tick. Nil-receiver safe.
func (r *Runtime) Refresh() {
	if r == nil {
		return
	}
	metrics.Read(r.samples)

	if h, ok := histValue(&r.samples[rmGCPauses]); ok {
		max, prev := histDeltaMax(h, r.prevPause)
		r.prevPause = prev
		r.gcPauseMax.Set(max)
	}
	if v, ok := uintValue(&r.samples[rmGCCycles]); ok {
		if v > r.prevCycles {
			r.gcCycles.Add(int64(v - r.prevCycles))
		}
		r.prevCycles = v
	}
	if v, ok := uintValue(&r.samples[rmHeapLive]); ok {
		r.heapLive.Set(float64(v))
	}
	if v, ok := uintValue(&r.samples[rmHeapGoal]); ok {
		r.heapGoal.Set(float64(v))
	}
	if v, ok := uintValue(&r.samples[rmGoroutines]); ok {
		r.goroutines.Set(float64(v))
	}
	if h, ok := histValue(&r.samples[rmSchedLat]); ok {
		p99, prev := histDeltaQuantile(h, r.prevSched, 0.99)
		r.prevSched = prev
		r.schedP99.Set(p99)
	}
	if s := &r.samples[rmMutexWait]; s.Value.Kind() == metrics.KindFloat64 {
		v := s.Value.Float64()
		if v >= r.prevMutexWait {
			r.mutexWait.Set(v)
			r.prevMutexWait = v
		}
	}
}

func uintValue(s *metrics.Sample) (uint64, bool) {
	if s.Value.Kind() != metrics.KindUint64 {
		return 0, false
	}
	return s.Value.Uint64(), true
}

func histValue(s *metrics.Sample) (*metrics.Float64Histogram, bool) {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return nil, false
	}
	h := s.Value.Float64Histogram()
	return h, h != nil
}

// bucketUpper returns a finite representative value for bucket i: its
// upper edge, falling back to the lower edge when the upper is +Inf.
func bucketUpper(h *metrics.Float64Histogram, i int) float64 {
	hi := h.Buckets[i+1]
	if math.IsInf(hi, 1) {
		return h.Buckets[i]
	}
	return hi
}

// histDeltaMax returns the upper edge of the highest bucket that gained
// counts since prev (0 when none did), plus the new cumulative counts to
// carry forward. The deltas are computed before snapshotCounts runs:
// snapshotCounts reuses prev's backing array, so reading prev afterwards
// would compare the histogram against itself.
func histDeltaMax(h *metrics.Float64Histogram, prev []uint64) (float64, []uint64) {
	max := 0.0
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if delta(h.Counts[i], prev, i) > 0 {
			max = bucketUpper(h, i)
			break
		}
	}
	return max, snapshotCounts(h, prev)
}

// histDeltaQuantile returns quantile q of the events added since prev
// (0 when no events were added), plus the new cumulative counts. Like
// histDeltaMax, it must finish reading prev before snapshotCounts
// overwrites it in place.
func histDeltaQuantile(h *metrics.Float64Histogram, prev []uint64, q float64) (float64, []uint64) {
	var total uint64
	for i := range h.Counts {
		total += delta(h.Counts[i], prev, i)
	}
	if total == 0 {
		return 0, snapshotCounts(h, prev)
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	val := bucketUpper(h, len(h.Counts)-1)
	var cum uint64
	for i := range h.Counts {
		cum += delta(h.Counts[i], prev, i)
		if cum >= rank {
			val = bucketUpper(h, i)
			break
		}
	}
	return val, snapshotCounts(h, prev)
}

func delta(cur uint64, prev []uint64, i int) uint64 {
	if i < len(prev) && cur >= prev[i] {
		return cur - prev[i]
	}
	return cur
}

// snapshotCounts copies h's cumulative counts, reusing prev's backing
// array when the shape matches (it always does after the first call).
func snapshotCounts(h *metrics.Float64Histogram, prev []uint64) []uint64 {
	if cap(prev) < len(h.Counts) {
		prev = make([]uint64, len(h.Counts))
	}
	prev = prev[:len(h.Counts)]
	copy(prev, h.Counts)
	return prev
}

// RuntimeStats is the /api/health runtime panel: the handful of numbers
// a dashboard needs to judge process health from a single probe.
type RuntimeStats struct {
	Goroutines    int     `json:"goroutines"`
	HeapLiveBytes uint64  `json:"heap_live_bytes"`
	HeapSysBytes  uint64  `json:"heap_sys_bytes"`
	GCCycles      uint32  `json:"gc_cycles"`
	LastGCPauseNs uint64  `json:"last_gc_pause_ns"`
	LastGCUnixNs  int64   `json:"last_gc_unix_ns,omitempty"`
	GCCPUFraction float64 `json:"gc_cpu_fraction"`
}

// ReadRuntimeStats snapshots the runtime panel. Cheap enough to run per
// HTTP request (one ReadMemStats), no sampler required.
func ReadRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := RuntimeStats{
		Goroutines:    runtime.NumGoroutine(),
		HeapLiveBytes: ms.HeapAlloc,
		HeapSysBytes:  ms.HeapSys,
		GCCycles:      ms.NumGC,
		GCCPUFraction: ms.GCCPUFraction,
	}
	if ms.NumGC > 0 {
		st.LastGCPauseNs = ms.PauseNs[(ms.NumGC+255)%256]
		if ms.LastGC <= math.MaxInt64 {
			st.LastGCUnixNs = int64(ms.LastGC)
		}
	}
	return st
}

// GCPauseDuration is LastGCPauseNs as a time.Duration, for renderers.
func (s RuntimeStats) GCPauseDuration() time.Duration {
	return time.Duration(s.LastGCPauseNs)
}
