package prof

import (
	"bytes"
	"context"
	"runtime/pprof"
	"testing"
)

// TestParseHeapProfile round-trips a real runtime profile through the
// decoder: the heap profile always has samples and a fixed four-dimension
// value schema, so the assertions are deterministic.
func TestParseHeapProfile(t *testing.T) {
	// Guarantee at least one live allocation large enough to sample.
	sink := make([]byte, 1<<20)
	defer func() { _ = sink[0] }()

	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatalf("write heap profile: %v", err)
	}
	p, err := ParseProfile(buf.Bytes())
	if err != nil {
		t.Fatalf("parse heap profile: %v", err)
	}
	if len(p.SampleTypes) != 4 {
		t.Fatalf("heap profile has %d sample types, want 4 (%+v)", len(p.SampleTypes), p.SampleTypes)
	}
	// alloc_objects/count, alloc_space/bytes, inuse_objects/count,
	// inuse_space/bytes — ValueIndex takes the last match.
	if vi := p.ValueIndex("bytes"); vi != 3 {
		t.Errorf("ValueIndex(bytes) = %d, want 3", vi)
	}
	if vi := p.ValueIndex("count"); vi != 2 {
		t.Errorf("ValueIndex(count) = %d, want 2", vi)
	}
	if len(p.Samples) == 0 {
		t.Fatal("heap profile decoded zero samples")
	}
	byLabel, total := p.SumByLabel(LabelStage, p.ValueIndex("bytes"))
	if total <= 0 {
		t.Errorf("heap in-use bytes total = %d, want > 0", total)
	}
	// Heap samples carry no stage labels: everything lands in "".
	if byLabel[""] != total {
		t.Errorf("unlabeled bucket %d != total %d", byLabel[""], total)
	}
}

// TestParseGoroutineLabels verifies the decoder surfaces string labels —
// the property the whole stage-attribution pipeline rests on.
func TestParseGoroutineLabels(t *testing.T) {
	defer clearLabels()
	pprof.SetGoroutineLabels(pprof.WithLabels(
		context.Background(), pprof.Labels("stage", "proto_test", "shard", "9")))

	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 0); err != nil {
		t.Fatalf("write goroutine profile: %v", err)
	}
	p, err := ParseProfile(buf.Bytes())
	if err != nil {
		t.Fatalf("parse goroutine profile: %v", err)
	}
	for _, s := range p.Samples {
		if s.Labels["stage"] == "proto_test" && s.Labels["shard"] == "9" {
			return
		}
	}
	t.Error("decoder never surfaced the stage=proto_test shard=9 label pair")
}

// TestParseProfileErrors pins the decoder's failure modes on malformed
// input: it must reject truncated bytes rather than mis-read them.
func TestParseProfileErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"dangling length-delimited tag", []byte{0x0a}},
		{"length past end", []byte{0x0a, 0x05, 0x01}},
		{"truncated varint", []byte{0x50, 0x80}},
		{"gzip magic without body", []byte{0x1f, 0x8b}},
		{"varint overflow", append([]byte{0x50}, bytes.Repeat([]byte{0x80}, 10)...)},
	}
	for _, tc := range cases {
		if _, err := ParseProfile(tc.data); err == nil {
			t.Errorf("%s: ParseProfile accepted malformed input", tc.name)
		}
	}
	// Empty input is a valid empty profile, not an error.
	p, err := ParseProfile(nil)
	if err != nil {
		t.Fatalf("empty profile: %v", err)
	}
	if len(p.Samples) != 0 || len(p.SampleTypes) != 0 {
		t.Error("empty input decoded non-empty profile")
	}
}

// TestSumByLabelInvalidIndex pins the guard rails: a negative value index
// (unit not present) sums to nothing instead of panicking.
func TestSumByLabelInvalidIndex(t *testing.T) {
	p := &Profile{Samples: []ProfileSample{{Values: []int64{1}}}}
	byLabel, total := p.SumByLabel("stage", -1)
	if total != 0 || len(byLabel) != 0 {
		t.Errorf("SumByLabel(-1) = %v total %d, want empty", byLabel, total)
	}
	if vi := p.ValueIndex("nanoseconds"); vi != -1 {
		t.Errorf("ValueIndex on empty schema = %d, want -1", vi)
	}
}
