package prof

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// A minimal decoder for the pprof profile.proto wire format — just the
// fields the collector and tests need: sample types, sample values,
// per-sample string labels, and the profile duration. Locations,
// mappings, and functions are skipped, so parsing a multi-second CPU
// window costs little more than a pass over the bytes. Dependency-free
// by the repo's ground rules: no protobuf runtime, no
// github.com/google/pprof.

// ProfileValueType is one sample-value dimension (e.g. cpu/nanoseconds).
type ProfileValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// ProfileSample is one decoded sample: its values (parallel to the
// profile's SampleTypes) and its string labels (stage, shard, episode).
type ProfileSample struct {
	Values []int64
	Labels map[string]string
}

// Profile is the decoded subset of a pprof profile.
type Profile struct {
	SampleTypes   []ProfileValueType
	Samples       []ProfileSample
	DurationNanos int64
}

// ValueIndex returns the index of the sample-value dimension with the
// given unit (e.g. "nanoseconds"), or -1. When several match (mutex and
// block profiles have count + nanoseconds), the last wins — matching
// pprof's convention of putting the primary dimension last.
func (p *Profile) ValueIndex(unit string) int {
	idx := -1
	for i, st := range p.SampleTypes {
		if st.Unit == unit {
			idx = i
		}
	}
	return idx
}

// SumByLabel sums the vi-th sample value grouped by the given label key.
// Samples missing the label are summed under "". The second return is
// the grand total across all samples.
func (p *Profile) SumByLabel(key string, vi int) (map[string]int64, int64) {
	out := make(map[string]int64)
	var total int64
	if vi < 0 {
		return out, 0
	}
	for i := range p.Samples {
		s := &p.Samples[i]
		if vi >= len(s.Values) {
			continue
		}
		v := s.Values[vi]
		out[s.Labels[key]] += v
		total += v
	}
	return out, total
}

// ParseProfile decodes a pprof profile (gzipped or raw proto bytes).
func ParseProfile(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		data = raw
	}
	return parseProfileProto(data)
}

// Raw intermediate forms: string-table indexes are resolved after the
// whole message (table included) has been walked, since the table may
// appear after its first use.
type rawValueType struct{ typ, unit int64 }

type rawLabel struct{ key, str int64 }

type rawSample struct {
	values []int64
	labels []rawLabel
}

var errTruncated = errors.New("prof: truncated profile proto")

func parseProfileProto(data []byte) (*Profile, error) {
	var (
		strings     []string
		sampleTypes []rawValueType
		samples     []rawSample
		duration    int64
	)
	b := protoBuf{data: data}
	for !b.done() {
		field, wire, err := b.tag()
		if err != nil {
			return nil, err
		}
		switch {
		case field == 1 && wire == 2: // sample_type
			msg, err := b.bytes()
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, vt)
		case field == 2 && wire == 2: // sample
			msg, err := b.bytes()
			if err != nil {
				return nil, err
			}
			s, err := parseSample(msg)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case field == 6 && wire == 2: // string_table
			msg, err := b.bytes()
			if err != nil {
				return nil, err
			}
			strings = append(strings, string(msg))
		case field == 10 && wire == 0: // duration_nanos
			v, err := b.varint()
			if err != nil {
				return nil, err
			}
			duration = int64(v)
		default:
			if err := b.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i int64) string {
		if i > 0 && i < int64(len(strings)) {
			return strings[i]
		}
		return ""
	}
	p := &Profile{DurationNanos: duration}
	for _, vt := range sampleTypes {
		p.SampleTypes = append(p.SampleTypes, ProfileValueType{
			Type: str(vt.typ), Unit: str(vt.unit),
		})
	}
	for _, rs := range samples {
		s := ProfileSample{Values: rs.values}
		if len(rs.labels) > 0 {
			s.Labels = make(map[string]string, len(rs.labels))
			for _, l := range rs.labels {
				if k := str(l.key); k != "" {
					s.Labels[k] = str(l.str)
				}
			}
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

func parseValueType(data []byte) (rawValueType, error) {
	var vt rawValueType
	b := protoBuf{data: data}
	for !b.done() {
		field, wire, err := b.tag()
		if err != nil {
			return vt, err
		}
		switch {
		case field == 1 && wire == 0:
			v, err := b.varint()
			if err != nil {
				return vt, err
			}
			vt.typ = int64(v)
		case field == 2 && wire == 0:
			v, err := b.varint()
			if err != nil {
				return vt, err
			}
			vt.unit = int64(v)
		default:
			if err := b.skip(wire); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func parseSample(data []byte) (rawSample, error) {
	var s rawSample
	b := protoBuf{data: data}
	for !b.done() {
		field, wire, err := b.tag()
		if err != nil {
			return s, err
		}
		switch {
		case field == 2 && wire == 2: // packed value
			msg, err := b.bytes()
			if err != nil {
				return s, err
			}
			pb := protoBuf{data: msg}
			for !pb.done() {
				v, err := pb.varint()
				if err != nil {
					return s, err
				}
				s.values = append(s.values, int64(v))
			}
		case field == 2 && wire == 0: // unpacked value
			v, err := b.varint()
			if err != nil {
				return s, err
			}
			s.values = append(s.values, int64(v))
		case field == 3 && wire == 2: // label
			msg, err := b.bytes()
			if err != nil {
				return s, err
			}
			l, err := parseLabel(msg)
			if err != nil {
				return s, err
			}
			if l.str != 0 { // string labels only; numeric labels skipped
				s.labels = append(s.labels, l)
			}
		default:
			if err := b.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func parseLabel(data []byte) (rawLabel, error) {
	var l rawLabel
	b := protoBuf{data: data}
	for !b.done() {
		field, wire, err := b.tag()
		if err != nil {
			return l, err
		}
		switch {
		case field == 1 && wire == 0:
			v, err := b.varint()
			if err != nil {
				return l, err
			}
			l.key = int64(v)
		case field == 2 && wire == 0:
			v, err := b.varint()
			if err != nil {
				return l, err
			}
			l.str = int64(v)
		default:
			if err := b.skip(wire); err != nil {
				return l, err
			}
		}
	}
	return l, nil
}

// protoBuf is a cursor over protobuf wire bytes.
type protoBuf struct {
	data []byte
	pos  int
}

func (b *protoBuf) done() bool { return b.pos >= len(b.data) }

func (b *protoBuf) varint() (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; i < 10; i++ {
		if b.pos >= len(b.data) {
			return 0, errTruncated
		}
		c := b.data[b.pos]
		b.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
	}
	return 0, errors.New("prof: varint overflow")
}

// tag reads one field tag, returning field number and wire type.
func (b *protoBuf) tag() (int, int, error) {
	v, err := b.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// bytes reads one length-delimited payload.
func (b *protoBuf) bytes() ([]byte, error) {
	n, err := b.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b.data)-b.pos) {
		return nil, errTruncated
	}
	out := b.data[b.pos : b.pos+int(n)]
	b.pos += int(n)
	return out, nil
}

func (b *protoBuf) skip(wire int) error {
	switch wire {
	case 0: // varint
		_, err := b.varint()
		return err
	case 1: // fixed64
		if b.pos+8 > len(b.data) {
			return errTruncated
		}
		b.pos += 8
		return nil
	case 2: // length-delimited
		_, err := b.bytes()
		return err
	case 5: // fixed32
		if b.pos+4 > len(b.data) {
			return errTruncated
		}
		b.pos += 4
		return nil
	default:
		return fmt.Errorf("prof: unsupported wire type %d", wire)
	}
}
