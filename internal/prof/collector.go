package prof

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"skynet/internal/telemetry"
)

// Collector is the continuous profiler's background loop: on a cadence
// it captures a short windowed CPU profile (plus heap, mutex, and block
// snapshots), attributes the CPU samples to pipeline stages via their
// pprof labels, publishes per-stage fractions as skynet_prof_* telemetry,
// and archives the window to a retention-bounded directory using the
// flight recorder's delete-oldest idiom.
//
// Windows are short (default 5s) on a long cadence (default 60s), so the
// duty cycle — and therefore the steady-state profiling overhead — stays
// under 10%, and zero between windows. The engine hot path never blocks
// on the collector: capture runs on its own goroutine, and WriteLatest
// (the flight-dump hook) copies the already-captured window instead of
// starting a new one.
type Collector struct {
	cfg CollectorConfig

	stageGauges map[string]*telemetry.Gauge
	windowsCtr  *telemetry.Counter
	errorsCtr   *telemetry.Counter
	windowCPU   *telemetry.Gauge

	startOnce sync.Once
	started   atomic.Bool
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}

	mu        sync.Mutex
	windows   []ProfileWindow // oldest first, bounded by cfg.Keep
	latestCPU []byte          // raw pprof bytes of the last good CPU window
	seq       int
	captures  int64
	errors    int64
	prevMutex lookupTotals
	prevBlock lookupTotals
}

// CollectorConfig configures a Collector; zero values take defaults.
type CollectorConfig struct {
	// Dir archives one subdirectory per window ("prof-<stamp>-<seq>").
	// Empty disables archiving; capture and telemetry stay on.
	Dir string
	// Interval is the start-to-start capture cadence (default 60s).
	Interval time.Duration
	// Window is the CPU capture length (default 5s). Clamped below
	// Interval.
	Window time.Duration
	// MaxWindows bounds the on-disk archive; the oldest window
	// directories are deleted first (default 16).
	MaxWindows int
	// Keep bounds the in-memory window list served by /api/profile
	// (default 32).
	Keep int
	// Registry receives skynet_prof_* metrics. Optional.
	Registry *telemetry.Registry
}

func (c CollectorConfig) withDefaults() CollectorConfig {
	if c.Interval <= 0 {
		c.Interval = time.Minute
	}
	if c.Window <= 0 {
		c.Window = 5 * time.Second
	}
	if c.Window >= c.Interval {
		c.Window = c.Interval / 2
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 16
	}
	if c.Keep <= 0 {
		c.Keep = 32
	}
	return c
}

// StageCPUSample is one stage's share of a window's sampled CPU.
type StageCPUSample struct {
	Stage    string  `json:"stage"`
	CPUNanos int64   `json:"cpu_nanos"`
	Fraction float64 `json:"fraction"`
}

// ProfileWindow is one captured window's summary — the /api/profile and
// window.json shape.
type ProfileWindow struct {
	Seq             int              `json:"seq"`
	Start           time.Time        `json:"start"`
	DurationNanos   int64            `json:"duration_nanos"`
	CPUSampledNanos int64            `json:"cpu_sampled_nanos"`
	Stages          []StageCPUSample `json:"stages,omitempty"`
	MutexDelayNanos int64            `json:"mutex_delay_nanos,omitempty"`
	BlockDelayNanos int64            `json:"block_delay_nanos,omitempty"`
	Dir             string           `json:"dir,omitempty"`
	Err             string           `json:"error,omitempty"`
}

// lookupTotals carries a contention profile's cumulative totals so a
// window can report deltas.
type lookupTotals struct {
	contentions int64
	delayNanos  int64
}

// NewCollector builds a collector. Per-stage gauges are registered
// eagerly for every known stage (plus the unlabeled bucket) so the
// registry revision stays stable once the pipeline is running.
func NewCollector(cfg CollectorConfig) *Collector {
	c := &Collector{
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if reg := c.cfg.Registry; reg != nil {
		c.windowsCtr = reg.Counter("skynet_prof_windows_total",
			"Profile windows captured by the continuous profiler.")
		c.errorsCtr = reg.Counter("skynet_prof_capture_errors_total",
			"Profile windows that failed to capture (e.g. a competing CPU profile).")
		c.windowCPU = reg.Gauge("skynet_prof_window_cpu_seconds",
			"CPU seconds sampled in the most recent profile window.")
		c.stageGauges = make(map[string]*telemetry.Gauge, int(numStages)+1)
		for _, name := range StageNames() {
			c.stageGauges[name] = reg.GaugeWith("skynet_prof_stage_cpu_fraction",
				telemetry.Label(LabelStage, name),
				"Fraction of sampled CPU attributed to each pipeline stage in the most recent profile window.")
		}
		c.stageGauges[otherStage] = reg.GaugeWith("skynet_prof_stage_cpu_fraction",
			telemetry.Label(LabelStage, otherStage),
			"Fraction of sampled CPU attributed to each pipeline stage in the most recent profile window.")
	}
	return c
}

// otherStage buckets CPU samples with no stage label — GC, ingest,
// HTTP serving, the collector itself.
const otherStage = "other"

// Start launches the capture loop: one window immediately, then one per
// Interval. Repeated calls are no-ops.
func (c *Collector) Start() {
	c.startOnce.Do(func() {
		c.started.Store(true)
		go c.run()
	})
}

// Stop halts the loop and waits for an in-flight window to finish. Safe
// on a never-started collector: there is no run goroutine to drain, so
// it returns immediately instead of blocking on done.
func (c *Collector) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	if c.started.Load() {
		<-c.done
	}
}

func (c *Collector) run() {
	defer close(c.done)
	for {
		start := time.Now()
		c.CaptureWindow()
		wait := c.cfg.Interval - time.Since(start)
		if wait < time.Second {
			wait = time.Second
		}
		select {
		case <-c.stop:
			return
		case <-time.After(wait):
		}
	}
}

// CaptureWindow runs one profile window synchronously and records it.
// Exported for tests and for callers that want a window on demand; the
// background loop calls it on its cadence.
func (c *Collector) CaptureWindow() ProfileWindow {
	w := ProfileWindow{Start: time.Now().UTC()}

	// Claim the sequence number up front so failed windows are uniquely
	// numbered too — /api/profile consumers key on Seq.
	c.mu.Lock()
	w.Seq = c.seq
	c.seq++
	c.mu.Unlock()

	var cpuBuf bytes.Buffer
	if err := pprof.StartCPUProfile(&cpuBuf); err != nil {
		// Most likely a competing profile (/debug/pprof/profile).
		// Count it and retry next interval.
		w.Err = err.Error()
		c.record(w, nil)
		return w
	}
	select {
	case <-c.stop:
	case <-time.After(c.cfg.Window):
	}
	pprof.StopCPUProfile()
	w.DurationNanos = time.Since(w.Start).Nanoseconds()

	if p, err := ParseProfile(cpuBuf.Bytes()); err != nil {
		w.Err = fmt.Sprintf("parse cpu profile: %v", err)
	} else {
		w.Stages, w.CPUSampledNanos = stageTable(p)
	}

	mutexBytes, mutexTotals := lookupProfile("mutex")
	blockBytes, blockTotals := lookupProfile("block")

	c.mu.Lock()
	w.MutexDelayNanos = mutexTotals.delayNanos - c.prevMutex.delayNanos
	w.BlockDelayNanos = blockTotals.delayNanos - c.prevBlock.delayNanos
	if w.MutexDelayNanos < 0 {
		w.MutexDelayNanos = 0
	}
	if w.BlockDelayNanos < 0 {
		w.BlockDelayNanos = 0
	}
	c.prevMutex, c.prevBlock = mutexTotals, blockTotals
	c.mu.Unlock()

	if c.cfg.Dir != "" && w.Err == "" {
		w.Dir = c.archive(&w, cpuBuf.Bytes(), mutexBytes, blockBytes)
	}
	c.record(w, cpuBuf.Bytes())
	return w
}

// stageTable aggregates a CPU profile's nanoseconds by stage label,
// sorted by descending CPU. Unlabeled samples land in the "other" row.
func stageTable(p *Profile) ([]StageCPUSample, int64) {
	vi := p.ValueIndex("nanoseconds")
	byStage, total := p.SumByLabel(LabelStage, vi)
	if total <= 0 {
		return nil, 0
	}
	out := make([]StageCPUSample, 0, len(byStage))
	for stage, nanos := range byStage {
		if stage == "" {
			stage = otherStage
		}
		out = append(out, StageCPUSample{
			Stage:    stage,
			CPUNanos: nanos,
			Fraction: float64(nanos) / float64(total),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CPUNanos != out[j].CPUNanos {
			return out[i].CPUNanos > out[j].CPUNanos
		}
		return out[i].Stage < out[j].Stage
	})
	return out, total
}

// lookupProfile snapshots a named runtime profile (mutex, block) and its
// cumulative totals. Returns nil bytes when the profile is unavailable.
func lookupProfile(name string) ([]byte, lookupTotals) {
	p := pprof.Lookup(name)
	if p == nil {
		return nil, lookupTotals{}
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 0); err != nil {
		return nil, lookupTotals{}
	}
	var t lookupTotals
	if parsed, err := ParseProfile(buf.Bytes()); err == nil {
		if vi := parsed.ValueIndex("nanoseconds"); vi >= 0 {
			_, t.delayNanos = parsed.SumByLabel(LabelStage, vi)
		}
		if vi := parsed.ValueIndex("count"); vi >= 0 {
			_, t.contentions = parsed.SumByLabel(LabelStage, vi)
		}
	}
	return buf.Bytes(), t
}

// archive writes one window directory and prunes the oldest beyond
// MaxWindows. Directory names sort chronologically (UTC stamp + seq), so
// pruning is a name sort — the flight recorder's retention idiom.
func (c *Collector) archive(w *ProfileWindow, cpu, mutex, block []byte) string {
	dir := filepath.Join(c.cfg.Dir,
		fmt.Sprintf("prof-%s-%06d", w.Start.Format("20060102T150405Z"), w.Seq))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	writeFile := func(name string, data []byte) {
		if len(data) > 0 {
			_ = os.WriteFile(filepath.Join(dir, name), data, 0o644)
		}
	}
	writeFile("cpu.pprof", cpu)
	writeFile("mutex.pprof", mutex)
	writeFile("block.pprof", block)
	var heapBuf bytes.Buffer
	if err := pprof.WriteHeapProfile(&heapBuf); err == nil {
		writeFile("heap.pprof", heapBuf.Bytes())
	}
	if meta, err := json.MarshalIndent(w, "", "  "); err == nil {
		writeFile("window.json", append(meta, '\n'))
	}
	c.pruneWindows()
	return dir
}

// pruneWindows deletes the oldest prof-* directories beyond MaxWindows.
func (c *Collector) pruneWindows() {
	entries, err := os.ReadDir(c.cfg.Dir)
	if err != nil {
		return
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() && len(e.Name()) > 5 && e.Name()[:5] == "prof-" {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) <= c.cfg.MaxWindows {
		return
	}
	sort.Strings(dirs)
	for _, name := range dirs[:len(dirs)-c.cfg.MaxWindows] {
		_ = os.RemoveAll(filepath.Join(c.cfg.Dir, name))
	}
}

// record publishes a finished window: telemetry, the in-memory ring, and
// the latest-CPU cache for flight dumps.
func (c *Collector) record(w ProfileWindow, cpu []byte) {
	c.mu.Lock()
	c.windows = append(c.windows, w)
	if len(c.windows) > c.cfg.Keep {
		c.windows = append(c.windows[:0], c.windows[len(c.windows)-c.cfg.Keep:]...)
	}
	if w.Err == "" {
		c.captures++
		if len(cpu) > 0 {
			c.latestCPU = append(c.latestCPU[:0], cpu...)
		}
	} else {
		c.errors++
	}
	c.mu.Unlock()

	if c.cfg.Registry == nil {
		return
	}
	if w.Err != "" {
		c.errorsCtr.Inc()
		return
	}
	c.windowsCtr.Inc()
	c.windowCPU.Set(float64(w.CPUSampledNanos) / 1e9)
	seen := make(map[string]bool, len(w.Stages))
	for _, s := range w.Stages {
		if g, ok := c.stageGauges[s.Stage]; ok {
			g.Set(s.Fraction)
			seen[s.Stage] = true
		}
	}
	for name, g := range c.stageGauges {
		if !seen[name] {
			g.Set(0)
		}
	}
}

// Windows returns the retained window summaries, oldest first.
func (c *Collector) Windows() []ProfileWindow {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ProfileWindow, len(c.windows))
	copy(out, c.windows)
	return out
}

// Latest returns the most recent window summary (ok=false before the
// first capture completes).
func (c *Collector) Latest() (ProfileWindow, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.windows) == 0 {
		return ProfileWindow{}, false
	}
	return c.windows[len(c.windows)-1], true
}

// Counts returns how many windows captured cleanly and how many failed.
func (c *Collector) Counts() (captures, errors int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.captures, c.errors
}

// WriteLatest drops the most recent labeled CPU window into dir as
// cpu.pprof — the flight recorder's Sources.Profiles hook. It never
// captures a fresh window (flight dumps happen on the engine loop), so
// it returns without writing when no window has completed yet.
func (c *Collector) WriteLatest(dir string) {
	c.mu.Lock()
	cpu := append([]byte(nil), c.latestCPU...)
	c.mu.Unlock()
	if len(cpu) == 0 {
		return
	}
	_ = os.WriteFile(filepath.Join(dir, "cpu.pprof"), cpu, 0o644)
}
