// Package prof is SkyNet's continuous runtime profiler: pprof label
// plumbing that attributes CPU samples to pipeline stages, a windowed
// background collector that turns those samples into skynet_prof_*
// telemetry and a retention-bounded on-disk archive, and a
// runtime/metrics sampler that feeds Go-runtime health (GC pauses, heap,
// scheduler latency) into the telemetry registry and tick-indexed TSDB.
//
// Label taxonomy (DESIGN.md §11): every profiled fan-out runs under a
// `stage` label naming the pipeline stage (classify, consolidate,
// locator_addbatch, locator_expire, refine_score, sop); worker goroutines
// additionally carry a `shard` label with their worker index; and while a
// flood episode is open every stage context also carries an `episode`
// label with the episode ID, so a CPU profile captured mid-flood can be
// sliced to exactly the work that flood caused.
//
// The labeler is built for the tick hot path: every label context is
// precomputed (rebuilt only on the rare episode open/close), so entering
// a stage is one atomic store plus one pprof.SetGoroutineLabels call —
// no allocation, no map construction. Worker goroutines inherit the
// spawning goroutine's label set automatically; a par spawn hook refines
// them with the worker's shard index.
package prof

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"skynet/internal/par"
)

// Stage identifies one profiled pipeline stage. Values index the
// labeler's precomputed context table — keep stageNames in sync.
type Stage uint8

// The profiled pipeline stages, in pipeline order.
const (
	StageClassify      Stage = iota // preprocess phase A: parallel FT-tree classification
	StageConsolidate                // preprocess phase B: per-shard consolidation
	StageLocatorAdd                 // locator AddBatch upserts
	StageLocatorExpire              // locator parallel expiry sweep
	StageRefineScore                // evaluator dirty-incident refine + score fan-out
	StageSOP                        // per-incident SOP action loop
	numStages
)

var stageNames = [numStages]string{
	"classify", "consolidate", "locator_addbatch",
	"locator_expire", "refine_score", "sop",
}

// String returns the stage's label value.
func (s Stage) String() string {
	if s < numStages {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames returns the stage label values in Stage order — the stable
// vocabulary shared by the collector's telemetry, /api/profile, and
// skynet-top.
func StageNames() []string {
	out := make([]string, numStages)
	copy(out, stageNames[:])
	return out
}

// Label keys attached to profiled goroutines.
const (
	LabelStage   = "stage"
	LabelShard   = "shard"
	LabelEpisode = "episode"
)

// stageCtx is one stage's precomputed label contexts: the stage context
// for the orchestrating goroutine and one shard-refined context per
// worker slot.
type stageCtx struct {
	ctx    context.Context
	shards []context.Context
}

// active publishes the stage the engine goroutine is currently inside so
// the par spawn hook can refine freshly spawned workers with their shard
// label. Package-global because par's hook is: the engine runs one
// profiled pipeline at a time (the labeler's documented contract).
var active atomic.Pointer[stageCtx]

var hookOnce sync.Once

// labelWorker is the par spawn hook: stamp the worker goroutine with the
// active stage's shard-refined label context. Workers already inherited
// the stage (and episode) labels at spawn; this only adds the shard.
func labelWorker(worker int) {
	sc := active.Load()
	if sc == nil {
		return
	}
	if worker >= 0 && worker < len(sc.shards) {
		pprof.SetGoroutineLabels(sc.shards[worker])
		return
	}
	pprof.SetGoroutineLabels(sc.ctx)
}

// Labeler owns the precomputed pprof label contexts for one engine's
// pipeline. All methods are called from the engine goroutine only; at
// most one labeler should be active per process (the par spawn hook and
// the `active` publication point are package-global).
//
// Every method is nil-receiver safe, so callers hold an optional
// *Labeler field and invoke it unconditionally.
type Labeler struct {
	maxShards int
	episode   uint64
	base      context.Context
	stages    [numStages]stageCtx
}

// NewLabeler builds a labeler with shard contexts for worker indexes
// [0, maxShards) — pass the widest fan-out the engine runs (max of
// workers, preprocess shards, locator shards). It installs the par spawn
// hook on first use.
func NewLabeler(maxShards int) *Labeler {
	if maxShards < 1 {
		maxShards = 1
	}
	l := &Labeler{maxShards: maxShards}
	l.rebuild()
	hookOnce.Do(func() { par.SetSpawnHook(labelWorker) })
	return l
}

// rebuild recomputes every label context. Called at construction and on
// episode transitions only — WithLabels allocates, so none of this runs
// per tick.
func (l *Labeler) rebuild() {
	base := context.Background()
	if l.episode != 0 {
		base = pprof.WithLabels(base,
			pprof.Labels(LabelEpisode, strconv.FormatUint(l.episode, 10)))
	}
	l.base = base
	for s := Stage(0); s < numStages; s++ {
		ctx := pprof.WithLabels(base, pprof.Labels(LabelStage, stageNames[s]))
		shards := make([]context.Context, l.maxShards)
		for w := range shards {
			shards[w] = pprof.WithLabels(ctx, pprof.Labels(LabelShard, strconv.Itoa(w)))
		}
		l.stages[s] = stageCtx{ctx: ctx, shards: shards}
	}
}

// SetEpisode tags (id != 0) or untags (id == 0) every label context with
// a flood episode. Engine goroutine only; costs a context rebuild, which
// is fine at flood open/close frequency.
func (l *Labeler) SetEpisode(id uint64) {
	if l == nil || l.episode == id {
		return
	}
	l.episode = id
	l.rebuild()
}

// Enter marks the calling goroutine (and, via the spawn hook, any worker
// goroutines forked while inside) as running stage s.
func (l *Labeler) Enter(s Stage) {
	if l == nil {
		return
	}
	sc := &l.stages[s]
	active.Store(sc)
	pprof.SetGoroutineLabels(sc.ctx)
}

// Exit clears the stage label, restoring the base (episode-only) label
// set on the calling goroutine.
func (l *Labeler) Exit() {
	if l == nil {
		return
	}
	active.Store(nil)
	pprof.SetGoroutineLabels(l.base)
}
