package preprocess

import (
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/ftree"
	"skynet/internal/hierarchy"
	"skynet/internal/monitors"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

var devLoc = hierarchy.MustNew("RG01", "CT01", "LS01", "ST01", "CL01", "dev-a")
var devLocB = hierarchy.MustNew("RG01", "CT01", "LS01", "ST01", "CL01", "dev-b")

func raw(src alert.Source, typ string, at time.Time, loc hierarchy.Path, val float64) alert.Alert {
	return alert.Alert{
		Source: src, Type: typ, Class: alert.Classify(src, typ),
		Time: at, End: at, Location: loc, Value: val, Count: 1,
	}
}

func classifier(t *testing.T) *ftree.Classifier {
	t.Helper()
	c, err := BootstrapClassifier()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestIdenticalConsolidation(t *testing.T) {
	p := New(DefaultConfig(), nil, nil)
	for i := 0; i < 10; i++ {
		p.Add(raw(alert.SourceSNMP, alert.TypeLinkDown, epoch.Add(time.Duration(i)*10*time.Second), devLoc, 1))
	}
	out := p.Tick(epoch.Add(2 * time.Minute))
	if len(out) != 1 {
		t.Fatalf("got %d alerts, want 1 consolidated", len(out))
	}
	a := out[0]
	if a.Count != 10 {
		t.Errorf("Count = %d, want 10", a.Count)
	}
	if a.Duration() != 90*time.Second {
		t.Errorf("duration = %v, want 90s", a.Duration())
	}
	st := p.Stats()
	if st.In != 10 || st.Out != 1 || st.Deduplicated != 9 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRefreshKeepsLongConditionsAlive(t *testing.T) {
	p := New(DefaultConfig(), nil, nil)
	p.Add(raw(alert.SourceSNMP, alert.TypeLinkDown, epoch, devLoc, 1))
	if got := p.Tick(epoch.Add(10 * time.Second)); len(got) != 1 {
		t.Fatalf("initial emission: %d", len(got))
	}
	// New observation arrives; a refresh is due after RefreshInterval.
	p.Add(raw(alert.SourceSNMP, alert.TypeLinkDown, epoch.Add(70*time.Second), devLoc, 1))
	got := p.Tick(epoch.Add(80 * time.Second))
	if len(got) != 1 {
		t.Fatalf("refresh emission: %d", len(got))
	}
	// Refreshes carry the DELTA of observations since the last emission
	// (one new observation here), so downstream accumulation stays exact.
	if got[0].Count != 1 {
		t.Errorf("refreshed delta count = %d, want 1", got[0].Count)
	}
	// No new observations → no more refreshes.
	if got := p.Tick(epoch.Add(3 * time.Minute)); len(got) != 0 {
		t.Errorf("spurious refresh: %d", len(got))
	}
}

func TestSporadicLossFiltered(t *testing.T) {
	p := New(DefaultConfig(), nil, nil)
	p.Add(raw(alert.SourcePing, alert.TypePacketLoss, epoch, devLoc, 0.01))
	if got := p.Tick(epoch.Add(10 * time.Second)); len(got) != 0 {
		t.Fatalf("sporadic loss emitted: %v", got)
	}
	// It expires without persisting.
	p.Tick(epoch.Add(10 * time.Minute))
	if st := p.Stats(); st.DroppedSporadic != 1 {
		t.Errorf("DroppedSporadic = %d", st.DroppedSporadic)
	}
}

func TestPersistentLowLossPasses(t *testing.T) {
	p := New(DefaultConfig(), nil, nil)
	for i := 0; i < 3; i++ {
		p.Add(raw(alert.SourcePing, alert.TypePacketLoss, epoch.Add(time.Duration(i)*5*time.Second), devLoc, 0.02))
	}
	if got := p.Tick(epoch.Add(20 * time.Second)); len(got) != 1 {
		t.Errorf("persistent low loss should pass, got %d", len(got))
	}
}

func TestHighLossPassesImmediately(t *testing.T) {
	p := New(DefaultConfig(), nil, nil)
	p.Add(raw(alert.SourcePing, alert.TypePacketLoss, epoch, devLoc, 0.5))
	if got := p.Tick(epoch.Add(5 * time.Second)); len(got) != 1 {
		t.Errorf("high loss should pass immediately, got %d", len(got))
	}
}

func TestTrafficDropNeedsCorroboration(t *testing.T) {
	p := New(DefaultConfig(), nil, nil)
	p.Add(raw(alert.SourceTraffic, alert.TypeTrafficDrop, epoch, devLoc, 0.3))
	if got := p.Tick(epoch.Add(10 * time.Second)); len(got) != 0 {
		t.Fatalf("uncorroborated drop emitted: %v", got)
	}
	// A failure alert in the same site corroborates it.
	p.Add(raw(alert.SourcePing, alert.TypePacketLoss, epoch.Add(20*time.Second), devLocB, 0.4))
	got := p.Tick(epoch.Add(30 * time.Second))
	types := map[string]bool{}
	for _, a := range got {
		types[a.Type] = true
	}
	if !types[alert.TypeTrafficDrop] {
		t.Errorf("corroborated drop not emitted; got %v", got)
	}
}

func TestTrafficDropExpiresUncorroborated(t *testing.T) {
	p := New(DefaultConfig(), nil, nil)
	p.Add(raw(alert.SourceTraffic, alert.TypeTrafficDrop, epoch, devLoc, 0.3))
	for i := 1; i <= 12; i++ {
		p.Tick(epoch.Add(time.Duration(i) * time.Minute))
	}
	if st := p.Stats(); st.DroppedUncorroborated != 1 {
		t.Errorf("DroppedUncorroborated = %d", st.DroppedUncorroborated)
	}
}

func TestRelatedSurgeFiltered(t *testing.T) {
	topo := topology.MustGenerate(topology.SmallConfig())
	l := topo.Link(0)
	a, b := topo.Device(l.A), topo.Device(l.B)
	p := New(DefaultConfig(), topo, nil)
	p.Add(raw(alert.SourceTraffic, alert.TypeTrafficSurge, epoch, a.Path, 2))
	if got := p.Tick(epoch.Add(5 * time.Second)); len(got) != 1 {
		t.Fatalf("first surge should emit, got %d", len(got))
	}
	// Adjacent device surges moments later: same traffic moving.
	p.Add(raw(alert.SourceTraffic, alert.TypeTrafficSurge, epoch.Add(10*time.Second), b.Path, 2))
	if got := p.Tick(epoch.Add(15 * time.Second)); len(got) != 0 {
		t.Errorf("adjacent surge should be filtered, got %v", got)
	}
	if st := p.Stats(); st.DroppedRelated != 1 {
		t.Errorf("DroppedRelated = %d", st.DroppedRelated)
	}
}

func TestNonAdjacentSurgesBothPass(t *testing.T) {
	topo := topology.MustGenerate(topology.SmallConfig())
	// Two ToRs in the same cluster are not directly linked.
	var tors []hierarchy.Path
	for _, id := range topo.DevicesUnder(topo.Clusters()[0]) {
		if topo.Device(id).Role == topology.RoleToR {
			tors = append(tors, topo.Device(id).Path)
		}
	}
	p := New(DefaultConfig(), topo, nil)
	p.Add(raw(alert.SourceTraffic, alert.TypeTrafficSurge, epoch, tors[0], 2))
	p.Tick(epoch.Add(5 * time.Second))
	p.Add(raw(alert.SourceTraffic, alert.TypeTrafficSurge, epoch.Add(10*time.Second), tors[1], 2))
	if got := p.Tick(epoch.Add(15 * time.Second)); len(got) != 1 {
		t.Errorf("non-adjacent surge should pass, got %d", len(got))
	}
}

func TestSyslogClassification(t *testing.T) {
	p := New(DefaultConfig(), nil, classifier(t))
	a := alert.Alert{
		Source: alert.SourceSyslog, Time: epoch, End: epoch, Location: devLoc, Count: 1,
		Raw: "%LINK-3-UPDOWN: Interface TenGigE0/9/0/1, changed state to down (cut)",
	}
	p.Add(a)
	out := p.Tick(epoch.Add(5 * time.Second))
	if len(out) != 1 {
		t.Fatalf("classified syslog should emit, got %d", len(out))
	}
	if out[0].Type != alert.TypeLinkDown || out[0].Class != alert.ClassRootCause {
		t.Errorf("got type=%q class=%v", out[0].Type, out[0].Class)
	}
}

func TestSyslogUnclassifiableDropped(t *testing.T) {
	p := New(DefaultConfig(), nil, classifier(t))
	p.Add(alert.Alert{
		Source: alert.SourceSyslog, Time: epoch, End: epoch, Location: devLoc, Count: 1,
		Raw: "totally novel gibberish line",
	})
	if got := p.Tick(epoch.Add(5 * time.Second)); len(got) != 0 {
		t.Errorf("unclassifiable syslog emitted: %v", got)
	}
	if st := p.Stats(); st.DroppedUnclassified != 1 {
		t.Errorf("DroppedUnclassified = %d", st.DroppedUnclassified)
	}
}

func TestSyslogWithoutClassifierDropped(t *testing.T) {
	p := New(DefaultConfig(), nil, nil)
	p.Add(alert.Alert{
		Source: alert.SourceSyslog, Time: epoch, End: epoch, Location: devLoc, Count: 1,
		Raw: "%LINK-3-UPDOWN: Interface TenGigE0/9/0/1, changed state to down",
	})
	if got := p.Tick(epoch.Add(5 * time.Second)); len(got) != 0 {
		t.Errorf("syslog without classifier emitted: %v", got)
	}
}

func TestDrainFlushesPending(t *testing.T) {
	p := New(DefaultConfig(), nil, nil)
	p.Add(raw(alert.SourceSNMP, alert.TypeLinkDown, epoch, devLoc, 1))
	out := p.Drain(epoch.Add(time.Second))
	if len(out) != 1 {
		t.Errorf("drain emitted %d", len(out))
	}
	// Drained state is empty: nothing further.
	if out := p.Tick(epoch.Add(time.Minute)); len(out) != 0 {
		t.Error("state not cleared by drain")
	}
}

func TestProcessBatchOrderingAndIDs(t *testing.T) {
	var rawAlerts []alert.Alert
	// Deliberately out of order.
	rawAlerts = append(rawAlerts,
		raw(alert.SourceSNMP, alert.TypeLinkDown, epoch.Add(time.Minute), devLoc, 1),
		raw(alert.SourcePing, alert.TypePacketLoss, epoch, devLocB, 0.5),
	)
	out, stats := Process(DefaultConfig(), nil, nil, rawAlerts, 10*time.Second)
	if len(out) != 2 {
		t.Fatalf("processed %d, want 2", len(out))
	}
	if stats.In != 2 || stats.Out != 2 {
		t.Errorf("stats = %+v", stats)
	}
	seen := map[uint64]bool{}
	for _, a := range out {
		if a.ID == 0 || seen[a.ID] {
			t.Errorf("bad or duplicate ID %d", a.ID)
		}
		seen[a.ID] = true
	}
	if got, _ := Process(DefaultConfig(), nil, nil, nil, 0); got != nil {
		t.Error("empty input should produce empty output")
	}
}

func TestEndToEndVolumeReduction(t *testing.T) {
	// The §6.2 claim at test scale: a severe failure's raw flood must
	// shrink substantially through preprocessing.
	topo := topology.MustGenerate(topology.SmallConfig())
	sim := netsim.New(topo, 1)
	city := topo.Clusters()[0].Truncate(hierarchy.LevelCity)
	sim.MustInject(netsim.Fault{Kind: netsim.FaultFiberBundleCut, Location: city, Magnitude: 0.5, Start: epoch.Add(30 * time.Second)})
	mcfg := monitors.DefaultConfig()
	fleet := monitors.NewFleet(topo, mcfg)
	rawAlerts, err := fleet.Run(sim, epoch, epoch.Add(5*time.Minute), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rawAlerts) < 100 {
		t.Fatalf("flood too small to be meaningful: %d", len(rawAlerts))
	}
	cls := classifier(t)
	out, stats := Process(DefaultConfig(), topo, cls, rawAlerts, 10*time.Second)
	if stats.In != len(rawAlerts) {
		t.Errorf("stats.In = %d, want %d", stats.In, len(rawAlerts))
	}
	reduction := float64(len(out)) / float64(len(rawAlerts))
	if reduction > 0.35 {
		t.Errorf("preprocessing reduced to %.0f%% of raw, want ≤35%%: %d → %d",
			reduction*100, len(rawAlerts), len(out))
	}
	for i := range out {
		if err := out[i].Validate(); err != nil {
			t.Fatalf("invalid output alert: %v", err)
		}
	}
}

func TestLinkAlertSplit(t *testing.T) {
	// §4.1: an externally ingested link alert (device location + device
	// peer + circuit set) is split into two device-attributed alerts.
	p := New(DefaultConfig(), nil, nil)
	a := raw(alert.SourceSNMP, alert.TypeLinkDown, epoch, devLoc, 1)
	a.Peer = devLocB
	a.CircuitSet = "cs-x"
	p.Add(a)
	out := p.Tick(epoch.Add(10 * time.Second))
	if len(out) != 2 {
		t.Fatalf("split produced %d alerts, want 2", len(out))
	}
	locs := map[hierarchy.Path]bool{}
	for _, o := range out {
		locs[o.Location] = true
		if o.CircuitSet != "cs-x" {
			t.Error("circuit set lost in split")
		}
	}
	if !locs[devLoc] || !locs[devLocB] {
		t.Errorf("split locations wrong: %v", locs)
	}
	// Non-link alerts (cluster-level peer, or no circuit set) never split.
	p2 := New(DefaultConfig(), nil, nil)
	b := raw(alert.SourcePing, alert.TypePacketLoss, epoch, devLoc, 0.5)
	b.Peer = devLocB.Parent() // cluster-level, not a device
	p2.Add(b)
	if got := p2.Tick(epoch.Add(10 * time.Second)); len(got) != 1 {
		t.Errorf("cluster-peer alert split: %d", len(got))
	}
}
