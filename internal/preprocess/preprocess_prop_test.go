package preprocess

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"skynet/internal/alert"
	"skynet/internal/experimentsutil"
	"skynet/internal/topology"
)

// Property tests: whatever the raw stream looks like, the preprocessor's
// accounting and output invariants must hold.

func propStream(seed int64, n int) ([]alert.Alert, *topology.Topology) {
	topo := topology.MustGenerate(topology.SmallConfig())
	r := rand.New(rand.NewSource(seed))
	return experimentsutil.RandomAlerts(topo, r, n, epoch), topo
}

func TestPropertyOutNeverExceedsIn(t *testing.T) {
	f := func(seed int64) bool {
		raw, topo := propStream(seed, 150)
		out, stats := Process(DefaultConfig(), topo, nil, raw, 10*time.Second)
		// Note: link-split can double individual alerts, but split copies
		// are counted in In as well only for the original; Out counts
		// consolidated streams which cannot exceed distinct streams.
		return stats.In == len(raw) && stats.Out == len(out) && stats.Out <= stats.In*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOutputsValidAndClassified(t *testing.T) {
	f := func(seed int64) bool {
		raw, topo := propStream(seed, 120)
		out, _ := Process(DefaultConfig(), topo, nil, raw, 10*time.Second)
		for i := range out {
			if err := out[i].Validate(); err != nil {
				return false
			}
			if out[i].ID == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCountConservation(t *testing.T) {
	// Every raw observation of emitted streams is represented exactly
	// once across the emissions (first emission + delta refreshes), so
	// total emitted Count never exceeds raw volume (plus link-split
	// duplicates) and never double-counts.
	f := func(seed int64) bool {
		raw, topo := propStream(seed, 150)
		rawCount := 0
		for i := range raw {
			c := raw[i].Count
			if c <= 0 {
				c = 1
			}
			rawCount += c
		}
		out, _ := Process(DefaultConfig(), topo, nil, raw, 10*time.Second)
		emitted := 0
		for i := range out {
			emitted += out[i].Count
		}
		return emitted <= rawCount*2 // ×2 bounds the link-split duplication
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDrainLeavesNothing(t *testing.T) {
	f := func(seed int64) bool {
		raw, topo := propStream(seed, 80)
		p := New(DefaultConfig(), topo, nil)
		var last time.Time
		for i := range raw {
			p.Add(raw[i])
			last = raw[i].Time
		}
		p.Drain(last.Add(time.Second))
		// After a drain the stream is empty: no ticks ever emit again.
		for i := 1; i <= 10; i++ {
			if len(p.Tick(last.Add(time.Duration(i)*time.Minute))) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		run := func() ([]alert.Alert, Stats) {
			raw, topo := propStream(seed, 100)
			return Process(DefaultConfig(), topo, nil, raw, 10*time.Second)
		}
		a, sa := run()
		b, sb := run()
		if sa != sb || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].StreamKey() != b[i].StreamKey() || a[i].Count != b[i].Count ||
				a[i].Location != b[i].Location {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
