package preprocess

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestParallelMatchesSerial drives the same raw stream through the
// preprocessor at several worker settings, interleaving uneven ingest
// chunks with ticks and a final drain. Emissions — order included — and
// the stats funnel must be bit-identical: the aggKey sharding and
// parallel FT-tree classification may only change which goroutine does
// the work, never the output.
func TestParallelMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		raw, topo := propStream(seed, 400)
		run := func(workers int) (string, Stats) {
			cfg := DefaultConfig()
			cfg.Workers = workers
			p := New(cfg, topo, nil)
			var b strings.Builder
			now := epoch
			i := 0
			for chunk := 1; i < len(raw); chunk++ {
				end := min(i+37*chunk, len(raw)) // uneven chunk sizes
				for ; i < end; i++ {
					p.Add(raw[i])
				}
				now = now.Add(10 * time.Second)
				for _, a := range p.Tick(now) {
					fmt.Fprintf(&b, "%+v\n", a)
				}
			}
			for _, a := range p.Drain(now.Add(time.Minute)) {
				fmt.Fprintf(&b, "%+v\n", a)
			}
			return b.String(), p.Stats()
		}
		refOut, refStats := run(1)
		if refOut == "" {
			t.Fatalf("seed %d: serial run emitted nothing to compare", seed)
		}
		for _, workers := range []int{2, 3, 8} {
			out, stats := run(workers)
			if out != refOut {
				t.Errorf("seed %d: emissions at %d workers diverged from serial", seed, workers)
			}
			if stats != refStats {
				t.Errorf("seed %d: stats at %d workers = %+v, serial %+v", seed, workers, stats, refStats)
			}
		}
	}
}
