package preprocess

import (
	"math/bits"
	"slices"
	"time"

	"skynet/internal/alert"
	"skynet/internal/ftree"
	"skynet/internal/topology"
)

// Batch helpers for experiments and trace replay. The streaming API (Add/
// Tick) is the production path; ProcessFunc and Process wrap it for
// offline corpora.

// ProcessFunc runs a whole raw-alert slice through a fresh preprocessor,
// ticking at the given interval, and calls fn with every non-empty batch
// of structured output. Alerts are processed in timestamp order (ties
// keep their input order). The batch slice passed to fn is reused by the
// next tick; fn must copy alerts it retains.
//
// The raw slice itself is neither copied nor reordered: ordering is done
// through a sorted index array, so the only per-corpus allocation here is
// 4 bytes per raw alert.
func ProcessFunc(cfg Config, topo *topology.Topology, classifier *ftree.Classifier,
	raw []alert.Alert, tick time.Duration, fn func([]alert.Alert)) Stats {
	if tick <= 0 {
		tick = 10 * time.Second
	}
	p := New(cfg, topo, classifier)
	if len(raw) == 0 {
		return p.Stats()
	}
	idx := sortedByTime(raw)
	emit := func(batch []alert.Alert) {
		if len(batch) > 0 {
			fn(batch)
		}
	}
	next := raw[idx[0]].Time.Add(tick)
	for _, ix := range idx {
		a := &raw[ix]
		for a.Time.After(next) {
			emit(p.Tick(next))
			next = next.Add(tick)
		}
		p.Add(*a)
	}
	end := raw[idx[len(idx)-1]].Time
	for !next.After(end.Add(cfg.AggWindow)) {
		emit(p.Tick(next))
		next = next.Add(tick)
	}
	emit(p.Drain(next))
	return p.Stats()
}

// sortedByTime returns raw's indices in timestamp order, ties keeping
// input order. When the corpus is small enough and its time span short
// enough, (delta-nanos, index) pairs pack into single int64 keys and an
// integer pdqsort replaces the closure-comparator sort — roughly 4x
// faster on real corpora. Oversized corpora fall back to the general
// comparator.
func sortedByTime(raw []alert.Alert) []int32 {
	minT, maxT := raw[0].Time, raw[0].Time
	for i := range raw {
		if raw[i].Time.Before(minT) {
			minT = raw[i].Time
		}
		if raw[i].Time.After(maxT) {
			maxT = raw[i].Time
		}
	}
	// idxBits is the narrowest index width that fits the corpus, leaving
	// the rest of the 63 value bits for the time delta — e.g. 20k rows
	// (15 bits) leave room for a ~3-day span at nanosecond resolution.
	idxBits := bits.Len(uint(len(raw)))
	span := maxT.Sub(minT)
	if span >= 0 && uint64(span) < 1<<(63-idxBits) {
		keys := make([]int64, len(raw))
		for i := range raw {
			keys[i] = raw[i].Time.Sub(minT).Nanoseconds()<<idxBits | int64(i)
		}
		slices.Sort(keys)
		idx := make([]int32, len(raw))
		for i, k := range keys {
			idx[i] = int32(k & (1<<idxBits - 1))
		}
		return idx
	}
	idx := make([]int32, len(raw))
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(i, j int32) int {
		ti, tj := raw[i].Time, raw[j].Time
		if ti.Before(tj) {
			return -1
		}
		if tj.Before(ti) {
			return 1
		}
		// Equal timestamps keep input order — the stability guarantee.
		if i < j {
			return -1
		}
		return 1
	})
	return idx
}

// Process is ProcessFunc with the output batches accumulated into one
// slice, for callers that want the whole structured corpus at once.
func Process(cfg Config, topo *topology.Topology, classifier *ftree.Classifier,
	raw []alert.Alert, tick time.Duration) ([]alert.Alert, Stats) {
	var out []alert.Alert
	stats := ProcessFunc(cfg, topo, classifier, raw, tick, func(batch []alert.Alert) {
		out = append(out, batch...)
	})
	return out, stats
}

// SyslogCorpus extracts the raw lines of syslog alerts, the training input
// for an FT-tree classifier ("initially, it gathers command-line outputs
// from all devices", §4.1).
func SyslogCorpus(raw []alert.Alert) []string {
	var out []string
	for i := range raw {
		if raw[i].Source == alert.SourceSyslog && raw[i].Raw != "" {
			out = append(out, raw[i].Raw)
		}
	}
	return out
}

// TrainClassifier trains an FT-tree classifier from the syslog lines in a
// raw alert corpus. Returns nil when the corpus has no syslog lines.
func TrainClassifier(raw []alert.Alert, cfg ftree.Config) (*ftree.Classifier, error) {
	corpus := SyslogCorpus(raw)
	if len(corpus) == 0 {
		return nil, nil
	}
	return ftree.NewClassifier(corpus, cfg)
}

// BootstrapCorpus returns a canonical training corpus covering every
// message family the syslog monitor can emit, for pipelines that must
// classify from the first alert (production trains on history; a fresh
// simulation has none).
func BootstrapCorpus() []string {
	families := []string{
		"%LINK-3-UPDOWN: Interface TenGigE0/1/0/25, changed state to down (peer)",
		"%LINEPROTO-5-UPDOWN: Line protocol on Interface TenGigE0/1/0/25, changed state to down",
		"%BGP-5-ADJCHANGE: neighbor 10.0.0.1 Down - Hold timer expired",
		"%BGP-4-FLAP: neighbor 10.0.0.2 session flapping, count 12",
		"%PLATFORM-2-HW_ERROR: Linecard 1 parity error detected at 0xbeef",
		"%SYSMGR-3-PROC_RESTART: Process rpd restarted, pid 1234",
		"%SYSTEM-2-MEMORY: Out of memory in process rpd, requested 65536 bytes",
		"%IF-3-CRC: Interface HundredGigE0/0/0/4 CRC errors 1532",
		"%CONFIG-3-COMMIT: configuration commit 42 rejected: invalid statement",
		"%PTP-4-OFFSET: clock offset 1500 us beyond threshold",
	}
	// Repeat each family with varied variable fields so every template
	// clears MinSupport.
	variants := []string{
		"%LINK-3-UPDOWN: Interface HundredGigE1/0/0/2, changed state to down (fiber)",
		"%LINEPROTO-5-UPDOWN: Line protocol on Interface FortyGigE0/2/1/7, changed state to down",
		"%BGP-5-ADJCHANGE: neighbor 10.20.30.40 Down - Hold timer expired",
		"%BGP-4-FLAP: neighbor 10.9.8.7 session flapping, count 99",
		"%PLATFORM-2-HW_ERROR: Linecard 7 parity error detected at 0x1f2e",
		"%SYSMGR-3-PROC_RESTART: Process rpd restarted, pid 777",
		"%SYSTEM-2-MEMORY: Out of memory in process rpd, requested 1024 bytes",
		"%IF-3-CRC: Interface TenGigE1/3/0/11 CRC errors 89",
		"%CONFIG-3-COMMIT: configuration commit 7 rejected: conflict",
		"%PTP-4-OFFSET: clock offset 800 us beyond threshold",
	}
	out := make([]string, 0, len(families)+len(variants))
	out = append(out, families...)
	out = append(out, variants...)
	return out
}

// BootstrapClassifier trains a classifier from the bootstrap corpus.
func BootstrapClassifier() (*ftree.Classifier, error) {
	return ftree.NewClassifier(BootstrapCorpus(), ftree.DefaultConfig())
}
