// Package preprocess implements SkyNet's preprocessor (§4.1): it converts
// the raw, per-tool alert streams into the uniform structured format and
// fights the volume problem with three consolidation mechanisms:
//
//  1. Consolidate identical alerts — repeats of the same (source, type,
//     location) collapse into one alert whose End/Count grow (SNMP
//     re-reporting a down interface every round becomes one alert with a
//     duration).
//  2. Consolidate within a data source — sporadic packet loss is ignored
//     until it persists; a traffic surge adjacent to an already-known
//     surge is the same traffic moving and is filtered.
//  3. Consolidate across data sources — a sudden traffic drop alone is
//     expected user behaviour; it passes only when corroborated by a
//     failure or device-error alert nearby.
//
// Syslog lines arrive as free text and are classified through FT-tree
// templates before anything else.
//
// The preprocessor is a stream processor: Add ingests raw alerts, Tick
// advances time and emits the structured survivors.
//
// # Sharded execution
//
// Add only buffers; all per-alert work happens in Tick, which fans the
// buffered batch out to Config.Workers workers in two parallel phases —
// FT-tree classification/normalization (per-alert independent) and
// per-aggregate consolidation (alerts hashed by aggregate key, so each
// aggregate has a single owner) — then drains the aggregates serially in
// one globally sorted key order. Emission order, assigned IDs, and every
// filter decision are therefore identical for any worker count, including
// the serial Workers=1 path.
package preprocess

import (
	"slices"
	"time"

	"skynet/internal/alert"
	"skynet/internal/ftree"
	"skynet/internal/hierarchy"
	"skynet/internal/intern"
	"skynet/internal/par"
	"skynet/internal/prof"
	"skynet/internal/provenance"
	"skynet/internal/span"
	"skynet/internal/topology"
)

// Config tunes the preprocessor. Zero value is unusable; start from
// DefaultConfig.
type Config struct {
	// AggWindow is how long an aggregate lives without new observations
	// before it closes. Matches the locator's 5-minute node lifetime.
	AggWindow time.Duration
	// RefreshInterval re-emits a still-active aggregate so downstream
	// trees stay alive ("updates the timestamp of the initial alert").
	RefreshInterval time.Duration
	// CorroborationWindow bounds how long a traffic-drop alert waits for
	// cross-source confirmation before being discarded.
	CorroborationWindow time.Duration
	// SporadicLossValue is the loss ratio below which packet loss is
	// "sporadic" and must persist to pass.
	SporadicLossValue float64
	// SporadicMinCount is how many observations a sporadic-loss aggregate
	// needs before emission.
	SporadicMinCount int
	// CorroborationLevel is the hierarchy level at which cross-source
	// corroboration is evaluated (default: site).
	CorroborationLevel hierarchy.Level
	// DisableCrossSource turns off the cross-source consolidation rule
	// (traffic drops pass without corroboration) — an ablation switch;
	// the paper's design has the rule on.
	DisableCrossSource bool
	// Workers bounds the classification/consolidation fan-out in Tick.
	// 0 means GOMAXPROCS; 1 runs fully serial. Output is identical for
	// every setting.
	Workers int
}

// DefaultConfig returns the production-like defaults.
func DefaultConfig() Config {
	return Config{
		AggWindow:           5 * time.Minute,
		RefreshInterval:     time.Minute,
		CorroborationWindow: 2 * time.Minute,
		SporadicLossValue:   0.05,
		SporadicMinCount:    3,
		CorroborationLevel:  hierarchy.LevelSite,
	}
}

// Stats counts the preprocessor's volume reduction for the Fig. 8b
// experiment. Counters other than In update when Tick processes the
// buffered batch.
type Stats struct {
	// In is the number of raw alerts ingested.
	In int
	// Out is the number of structured alerts emitted.
	Out int
	// Deduplicated counts raw alerts absorbed into an existing aggregate.
	Deduplicated int
	// DroppedSporadic counts sporadic losses that never persisted.
	DroppedSporadic int
	// DroppedRelated counts surge alerts filtered as propagation of a
	// neighbour's surge.
	DroppedRelated int
	// DroppedUncorroborated counts traffic drops with no cross-source
	// confirmation.
	DroppedUncorroborated int
	// DroppedUnclassified counts syslog lines matching no labeled
	// template.
	DroppedUnclassified int
}

// aggKey identifies one aggregate: one alert stream at one location.
// Streams of the same type on different circuit sets stay separate so the
// evaluator's per-set ratios survive consolidation. All three parts are
// dense interned IDs (circuit sets included), so hashing a key is a
// 12-byte memhash with no string walk at all.
type aggKey struct {
	pid intern.PathID
	tid intern.TypeID
	cs  int32
}

// aggregate is one live (source, type, location) stream.
type aggregate struct {
	key aggKey
	// chain links aggregates that share a location, threaded from the
	// shard's byPid table — consolidation's lookup structure.
	chain    *aggregate
	a        alert.Alert
	emitted  bool
	dead     bool // swept away; awaiting key-list compaction
	lastEmit time.Time
	lastSeen time.Time
	// emittedCount is how many raw observations have been reported
	// downstream, so refreshes carry deltas rather than re-counting.
	emittedCount int
	suspended    bool // waiting for corroboration (traffic drops)
	// headLineage is the provenance lineage of the alert that opened this
	// aggregate, carried until the aggregate's fate is known (first
	// emission or a filter drop); refreshes carry no lineage.
	headLineage uint64
}

// preShard owns a disjoint subset of the aggregates, selected by hashing
// the aggregate's location. Exactly one worker touches a shard per phase.
type preShard struct {
	// byPid indexes the shard's live aggregates by interned location ID:
	// byPid[pid] heads a short chain (via aggregate.chain) of the
	// streams at that location. Consolidation's lookup is then an array
	// index plus a couple of int compares — no hashing at all. The
	// slice is shard-local, so growing it inside the parallel phase is
	// race-free; live counts the chained aggregates.
	byPid []*aggregate
	live  int
	// keys mirrors the map's value set in emission order, maintained
	// incrementally so Tick never re-sorts the full population. Holding
	// the aggregates directly lets the sweep and the k-way merge walk the
	// population with zero map lookups.
	keys []*aggregate

	// per-tick scratch, merged into Stats serially after each phase
	newAggs []*aggregate
	dedup   int
	routed  int // batch alerts consolidated into this shard last Tick
	deleted int // sweep deletions pending key-list compaction

	// aggFree recycles swept aggregate structs so steady-state churn
	// (streams expiring and reappearing) does not allocate.
	aggFree []*aggregate

	// provenance resolutions staged during phase B, flushed serially
	provAbsorbed []provenance.Pair
}

// prepared is the small per-row phase-A/serial-pass sidecar for one
// buffered raw alert. The alert data itself lives in the pending batch's
// columns (normalized in place by phase A); the interned PID/TID/CS land
// in the batch's dense-ID columns. What remains here is routing and
// bookkeeping — 16 bytes per row instead of a full Alert copy.
type prepared struct {
	lin        uint64 // provenance lineage (0 when recording is off)
	shard      int32
	drop       bool // unclassifiable syslog
	classified bool // typed through an FT-tree template this tick
}

// chunkScratch is the phase-A per-worker scratch; slot i belongs to chunk
// i, so no two goroutines share state.
type chunkScratch struct {
	droppedUnclassified int
}

// Preprocessor is the streaming §4.1 stage. Add and Tick must be called
// from one goroutine (the engine loop); Tick internally fans work out to
// Config.Workers goroutines.
type Preprocessor struct {
	cfg        Config
	topo       *topology.Topology
	classifier *ftree.Classifier
	workers    int

	// pending buffers raw alerts between Ticks in columnar form; column
	// capacity persists at the flood high-water mark so steady state
	// allocates nothing.
	pending alert.Batch
	// pendingLin mirrors pending's rows with the lineage assigned at Add;
	// empty when no recorder is attached.
	pendingLin []uint64

	// prov is the optional lineage recorder; nil keeps every provenance
	// branch off the hot path.
	prov *provenance.Recorder

	// spans is the tracing context of the current engine tick; the zero
	// Scope (tracing off) makes every span call a no-op.
	spans span.Scope

	// profL labels the classify/consolidate fan-outs with their pprof
	// stage; nil (profiling off) makes every call a nil-receiver no-op.
	profL *prof.Labeler

	shards []preShard

	// pt/tt intern locations and (source, type) pairs into dense IDs.
	// Single-writer: Intern is only called from the serial pass between
	// the parallel phases; the per-PathID tables below grow in lockstep.
	pt *intern.PathTable
	tt *intern.TypeTable
	// routeOf maps PathID → owning shard; corroOf maps PathID → the
	// PathID of its ancestor at CorroborationLevel.
	routeOf []int32
	corroOf []intern.PathID
	// csIDs interns circuit-set strings; 0 is reserved for "no set" so
	// the common case skips the map entirely.
	csIDs map[string]int32

	// corroT records recent corroborating evidence per corroboration-level
	// location: the last time a failure/root-cause alert was seen there,
	// indexed by interned PathID (zero time = no evidence). corroList
	// tracks which slots are set so expiry never scans the full table.
	corroT    []time.Time
	corroList []intern.PathID

	stats  Stats
	nextID uint64

	// reused per-tick buffers
	prep    []prepared
	chunks  []chunkScratch
	emitBuf []alert.Alert
	cursors []int
}

// New builds a preprocessor. The classifier may be nil, in which case raw
// syslog lines are dropped as unclassifiable; topo may be nil, disabling
// the adjacency-based related-surge filter.
func New(cfg Config, topo *topology.Topology, classifier *ftree.Classifier) *Preprocessor {
	workers := par.Workers(cfg.Workers)
	p := &Preprocessor{
		cfg:        cfg,
		topo:       topo,
		classifier: classifier,
		workers:    workers,
		shards:     make([]preShard, workers),
		pt:         intern.NewPathTable(),
		tt:         intern.NewTypeTable(),
		csIDs:      make(map[string]int32),
		chunks:     make([]chunkScratch, workers),
		cursors:    make([]int, workers),
	}
	return p
}

// growTables extends the per-PathID tables to cover newly interned
// paths. Serial pass only, never during a parallel phase.
func (p *Preprocessor) growTables() {
	for id := len(p.routeOf); id < p.pt.Len(); id++ {
		pid := intern.PathID(id)
		p.routeOf = append(p.routeOf, int32(shardIndex(p.pt.Path(pid), p.workers)))
		corro := pid
		for p.pt.Depth(corro) > int(p.cfg.CorroborationLevel) {
			corro = p.pt.Parent(corro)
		}
		p.corroOf = append(p.corroOf, corro)
	}
	if len(p.corroT) < p.pt.Len() {
		p.corroT = append(p.corroT, make([]time.Time, p.pt.Len()-len(p.corroT))...)
	}
}

// Workers reports the resolved fan-out width (shard count).
func (p *Preprocessor) Workers() int { return p.workers }

// EnableProvenance attaches a lineage recorder. Call before the first Add;
// with no recorder the pipeline runs exactly as before.
func (p *Preprocessor) EnableProvenance(rec *provenance.Recorder) { p.prov = rec }

// SetSpans installs the span context for the next Tick: the classify and
// consolidate fan-outs and the sweep appear as children of the scope's
// parent span. The engine refreshes it every tick; it never affects what
// the preprocessor emits.
func (p *Preprocessor) SetSpans(sc span.Scope) { p.spans = sc }

// SetProf installs the pprof stage labeler; the classify and consolidate
// fan-outs then run under their stage (and shard) labels. Never affects
// what the preprocessor emits.
func (p *Preprocessor) SetProf(l *prof.Labeler) { p.profL = l }

// PendingDepth reports the number of raw alerts buffered since the last
// Tick — the preprocessor's queue depth.
func (p *Preprocessor) PendingDepth() int { return p.pending.Len() }

// ShardAggregates reports the live aggregate count of one shard.
func (p *Preprocessor) ShardAggregates(i int) int { return p.shards[i].live }

// ShardRouted reports how many batch alerts the last Tick consolidated
// into shard i.
func (p *Preprocessor) ShardRouted(i int) int { return p.shards[i].routed }

// Stats returns a snapshot of the volume counters.
func (p *Preprocessor) Stats() Stats { return p.stats }

// Add buffers one raw alert; all classification and consolidation work
// happens in the next Tick.
func (p *Preprocessor) Add(a alert.Alert) {
	p.stats.In++
	// Link-alert split (§4.1): "an alert related to a link is split into
	// two alerts corresponding to the devices it connects". The built-in
	// monitors already emit per-endpoint alerts; this handles externally
	// ingested collectors that report one alert per link.
	if a.CircuitSet != "" && a.Location.IsDevice() && a.Peer.IsDevice() && a.Peer != a.Location {
		mirrored := a
		mirrored.Location, mirrored.Peer = a.Peer, a.Location
		p.pending.Append(&mirrored)
		if p.prov != nil {
			p.pendingLin = append(p.pendingLin, p.prov.Ingest(&mirrored, true))
		}
	}
	p.pending.Append(&a)
	if p.prov != nil {
		p.pendingLin = append(p.pendingLin, p.prov.Ingest(&a, false))
	}
}

// AddBatch buffers a columnar batch of raw alerts, applying the same
// link-alert split per row. The batch's rows are copied into the pending
// columns; the caller may Reset and reuse b immediately.
func (p *Preprocessor) AddBatch(b *alert.Batch) {
	n := b.Len()
	// With the lineage recorder attached every row needs an individual
	// Ingest call anyway, so take the per-row path.
	if p.prov != nil {
		var a alert.Alert
		for i := 0; i < n; i++ {
			b.AlertAt(i, &a)
			p.Add(a)
		}
		return
	}
	p.stats.In += n
	// Bulk path: copy maximal runs of ordinary rows with one memmove per
	// column, dropping to the per-row splitter only for link alerts
	// (rare — the built-in monitors already emit per-endpoint alerts).
	var a alert.Alert
	lo := 0
	for i := 0; i < n; i++ {
		if b.CircuitSet[i] != "" && b.Location[i].IsDevice() && b.Peer[i].IsDevice() &&
			b.Peer[i] != b.Location[i] {
			p.pending.AppendRange(b, lo, i)
			b.AlertAt(i, &a)
			p.Add(a)
			p.stats.In-- // Add counted it again
			lo = i + 1
		}
	}
	p.pending.AppendRange(b, lo, n)
}

// absorb ingests the pending batch into the aggregate shards: phase A
// classifies and normalizes every alert in parallel, a serial pass
// interns IDs and collects corroboration evidence, and phase B
// consolidates each shard's alerts in arrival order under a single
// owner.
func (p *Preprocessor) absorb() {
	n := p.pending.Len()
	if n == 0 {
		for s := range p.shards {
			p.shards[s].routed = 0
		}
		return
	}
	if cap(p.prep) < n {
		p.prep = make([]prepared, n)
	}
	p.prep = p.prep[:n]
	nshards := len(p.shards)

	// Phase A: per-alert classification and normalization, chunked over
	// the workers. Row i of the batch and slot i of prep belong to each
	// other, and every column write is row-owned, so worker scheduling
	// cannot reorder or race anything.
	chunkSize := (n + p.workers - 1) / p.workers
	nchunks := (n + chunkSize - 1) / chunkSize
	cf := p.spans.Fork("classify", nchunks)
	p.profL.Enter(prof.StageClassify)
	par.DoTimed(p.workers, nchunks, cf.Timer(), func(c int) {
		lo, hi := c*chunkSize, (c+1)*chunkSize
		if hi > n {
			hi = n
		}
		scratch := &p.chunks[c]
		for i := lo; i < hi; i++ {
			if i < len(p.pendingLin) {
				p.prep[i].lin = p.pendingLin[i]
			} else {
				p.prep[i].lin = 0
			}
			p.prepareRow(i, &p.prep[i], scratch)
		}
	})
	p.profL.Exit()
	// Serial pass: intern IDs into the batch's dense-ID columns
	// (single-writer tables), route to shards, record corroboration
	// evidence (max observation time per location), resolve phase-A
	// provenance, and merge drop counters.
	b := &p.pending
	for i := range p.prep {
		it := &p.prep[i]
		if it.drop {
			if p.prov != nil && it.lin != 0 {
				p.prov.Filtered(it.lin, provenance.FilterUnclassified)
			}
			continue
		}
		pid := p.pt.Intern(b.Location[i])
		b.PID[i] = int32(pid)
		b.TID[i] = int32(p.tt.Intern(alert.TypeKey{Source: b.Source[i], Type: b.Type[i]}))
		b.CS[i] = 0
		if cs := b.CircuitSet[i]; cs != "" {
			id, ok := p.csIDs[cs]
			if !ok {
				id = int32(len(p.csIDs)) + 1
				p.csIDs[cs] = id
			}
			b.CS[i] = id
		}
		if p.pt.Len() > len(p.routeOf) {
			p.growTables()
		}
		it.shard = p.routeOf[pid]
		if b.Class[i] == alert.ClassFailure || b.Class[i] == alert.ClassRootCause {
			key := p.corroOf[pid]
			if t := p.corroT[key]; t.IsZero() {
				p.corroT[key] = b.Time[i]
				p.corroList = append(p.corroList, key)
			} else if b.Time[i].After(t) {
				p.corroT[key] = b.Time[i]
			}
		}
		if p.prov != nil && it.lin != 0 && it.classified {
			p.prov.SetTemplate(it.lin, b.Type[i])
		}
	}
	for c := 0; c < nchunks; c++ {
		p.stats.DroppedUnclassified += p.chunks[c].droppedUnclassified
		p.chunks[c].droppedUnclassified = 0
	}

	// Phase B: per-shard consolidation. Each worker scans the batch in
	// row order and applies only its own shard's rows, so every
	// aggregate sees its observations in arrival order — exactly the
	// serial semantics. Merges read only the scalar columns; a full
	// Alert is materialized once per new aggregate, not per row.
	sf := p.spans.Fork("consolidate", nshards)
	p.profL.Enter(prof.StageConsolidate)
	par.DoTimed(p.workers, nshards, sf.Timer(), func(s int) {
		shard := &p.shards[s]
		shard.dedup, shard.routed = 0, 0
		shard.newAggs = shard.newAggs[:0]
		// Cover every PathID interned by the serial pass. byPid is
		// shard-local, so this grow cannot race other workers.
		if n := p.pt.Len(); len(shard.byPid) < n {
			shard.byPid = append(shard.byPid, make([]*aggregate, n-len(shard.byPid))...)
		}
		for i := range p.prep {
			it := &p.prep[i]
			if it.drop || int(it.shard) != s {
				continue
			}
			shard.routed++
			p.consolidate(shard, i, it)
		}
		if len(shard.newAggs) > 0 {
			slices.SortFunc(shard.newAggs, cmpAgg)
			shard.keys = mergeSortedAggs(shard.keys, shard.newAggs)
		}
	})
	p.profL.Exit()
	for s := range p.shards {
		p.stats.Deduplicated += p.shards[s].dedup
		if len(p.shards[s].provAbsorbed) > 0 {
			p.prov.ConsolidatedAll(p.shards[s].provAbsorbed)
			p.shards[s].provAbsorbed = p.shards[s].provAbsorbed[:0]
		}
	}
	p.pending.Reset()
	p.pendingLin = p.pendingLin[:0]
}

// prepareRow runs the order-independent per-alert work on batch row i:
// syslog classification and class/count/end normalization, in place on
// the columns.
func (p *Preprocessor) prepareRow(i int, out *prepared, scratch *chunkScratch) {
	out.classified = false
	b := &p.pending
	// Syslog classification: free text → type via FT-tree.
	if b.Source[i] == alert.SourceSyslog && b.Type[i] == "" {
		typ, ok := p.classify(b.Raw[i])
		if !ok {
			scratch.droppedUnclassified++
			out.drop = true
			return
		}
		b.Type[i] = typ
		b.Class[i] = alert.Classify(alert.SourceSyslog, typ)
		out.classified = true
	}
	if b.Class[i] == alert.ClassInfo {
		// Normalize class from the catalog when the producer left it
		// unset.
		if c := alert.Classify(b.Source[i], b.Type[i]); c != alert.ClassInfo {
			b.Class[i] = c
		}
	}
	if b.Count[i] <= 0 {
		b.Count[i] = 1
	}
	if b.End[i].Before(b.Time[i]) {
		b.End[i] = b.Time[i]
	}
	out.drop = false
}

// consolidate applies consolidation 1 (identical alerts absorb) for one
// normalized batch row within its owning shard. it.lin is the row's
// provenance lineage (0 when recording is off); absorptions are staged in
// shard scratch because this runs in the parallel phase.
func (p *Preprocessor) consolidate(shard *preShard, i int, it *prepared) {
	b := &p.pending
	k := aggKey{pid: intern.PathID(b.PID[i]), tid: intern.TypeID(b.TID[i]), cs: b.CS[i]}
	for g := shard.byPid[k.pid]; g != nil; g = g.chain {
		if g.key.tid != k.tid || g.key.cs != k.cs {
			continue
		}
		shard.dedup++
		if b.End[i].After(g.a.End) {
			g.a.End = b.End[i]
		}
		if b.Value[i] > g.a.Value {
			g.a.Value = b.Value[i]
		}
		g.a.Count += int(b.Count[i])
		g.lastSeen = b.Time[i]
		if it.lin != 0 {
			shard.provAbsorbed = append(shard.provAbsorbed, provenance.Pair{Lid: it.lin, Head: g.headLineage})
		}
		return
	}
	suspended := b.Type[i] == alert.TypeTrafficDrop && !p.cfg.DisableCrossSource
	var g *aggregate
	if n := len(shard.aggFree); n > 0 {
		g = shard.aggFree[n-1]
		shard.aggFree = shard.aggFree[:n-1]
		*g = aggregate{key: k, lastSeen: b.Time[i], suspended: suspended, headLineage: it.lin}
	} else {
		g = &aggregate{key: k, lastSeen: b.Time[i], suspended: suspended, headLineage: it.lin}
	}
	b.AlertAt(i, &g.a)
	g.chain = shard.byPid[k.pid]
	shard.byPid[k.pid] = g
	shard.live++
	shard.newAggs = append(shard.newAggs, g)
}

// unlink removes g from its location's consolidation chain. Chains are a
// handful of streams long, so the predecessor walk is trivial.
func (shard *preShard) unlink(g *aggregate) {
	if cur := shard.byPid[g.key.pid]; cur == g {
		shard.byPid[g.key.pid] = g.chain
	} else {
		for ; cur != nil; cur = cur.chain {
			if cur.chain == g {
				cur.chain = g.chain
				break
			}
		}
	}
	g.chain = nil
	shard.live--
}

// classify runs the FT-tree classifier over a raw line. The classifier is
// immutable after construction, so concurrent phase-A calls are safe.
func (p *Preprocessor) classify(raw string) (string, bool) {
	if p.classifier == nil || raw == "" {
		return "", false
	}
	return p.classifier.ClassifyLine(raw)
}

// Tick ingests the buffered batch and returns the structured alerts
// emitted at now: new aggregates that pass the filters, refreshes of
// long-running aggregates, and corroborated traffic drops. Expired
// aggregates are garbage collected.
//
// The returned slice is reused by the next Tick or Drain call; callers
// that retain alerts past that point must copy them.
func (p *Preprocessor) Tick(now time.Time) []alert.Alert {
	if p.prov != nil {
		p.prov.BeginEmitWindow()
	}
	p.absorb()
	// Sweep aggregates in one global lessAggKey order (a k-way merge of
	// the shards' sorted key lists) so emission order, assigned IDs, and
	// the related-surge decisions are identical for every worker count.
	swR := p.spans.Begin("sweep")
	p.emitBuf = p.emitBuf[:0]
	p.sweep(now, func(shard *preShard, g *aggregate) {
		if now.Sub(g.lastSeen) > p.cfg.AggWindow {
			// Aggregate went quiet: account for the never-emitted ones.
			if !g.emitted {
				switch {
				case g.suspended:
					p.stats.DroppedUncorroborated++
					p.resolveFiltered(g, provenance.FilterUncorroborated)
				case p.isSporadic(g):
					p.stats.DroppedSporadic++
					p.resolveFiltered(g, provenance.FilterSporadic)
				default:
					p.resolveFiltered(g, provenance.FilterStale)
				}
			}
			shard.unlink(g)
			g.dead = true
			shard.deleted++
			return
		}
		if g.emitted {
			if now.Sub(g.lastEmit) >= p.cfg.RefreshInterval && g.lastSeen.After(g.lastEmit) {
				p.emitBuf = append(p.emitBuf, p.emit(g, now))
			}
			return
		}
		if !p.pass(g, now) {
			return
		}
		p.emitBuf = append(p.emitBuf, p.emit(g, now))
	})
	p.compactKeys()
	p.spans.End(swR, len(p.emitBuf))
	// Expire stale corroboration evidence.
	for i := 0; i < len(p.corroList); {
		loc := p.corroList[i]
		if now.Sub(p.corroT[loc]) > p.cfg.CorroborationWindow {
			p.corroT[loc] = time.Time{}
			last := len(p.corroList) - 1
			p.corroList[i] = p.corroList[last]
			p.corroList = p.corroList[:last]
		} else {
			i++
		}
	}
	return p.emitBuf
}

// sweep visits every live aggregate in global emission order (a k-way
// merge over the shards' sorted aggregate lists — no map lookups). The
// visitor may delete the current aggregate from its shard (marking it
// dead and bumping shard.deleted); compactKeys reconciles the lists
// afterwards.
func (p *Preprocessor) sweep(now time.Time, visit func(shard *preShard, g *aggregate)) {
	cursors := p.cursors
	for i := range cursors {
		cursors[i] = 0
	}
	for {
		best := -1
		for s := range p.shards {
			keys := p.shards[s].keys
			if cursors[s] >= len(keys) {
				continue
			}
			if best < 0 || cmpAgg(keys[cursors[s]], p.shards[best].keys[cursors[best]]) < 0 {
				best = s
			}
		}
		if best < 0 {
			return
		}
		shard := &p.shards[best]
		g := shard.keys[cursors[best]]
		cursors[best]++
		visit(shard, g)
	}
}

// compactKeys drops swept-away aggregates from each shard's sorted list,
// in parallel — each shard is owned by one task.
func (p *Preprocessor) compactKeys() {
	par.Do(p.workers, len(p.shards), func(s int) {
		shard := &p.shards[s]
		if shard.deleted == 0 {
			return
		}
		kept := shard.keys[:0]
		for _, g := range shard.keys {
			if !g.dead {
				kept = append(kept, g)
			} else {
				// Recycle: the struct is unreferenced once off the keys
				// list (unlink already dropped it from the byPid chain).
				shard.aggFree = append(shard.aggFree, g)
			}
		}
		for i := len(kept); i < len(shard.keys); i++ {
			shard.keys[i] = nil
		}
		shard.keys = kept
		shard.deleted = 0
	})
}

// pass applies the single-source and cross-source consolidation rules to a
// not-yet-emitted aggregate.
func (p *Preprocessor) pass(g *aggregate, now time.Time) bool {
	// Cross-source rule: traffic drops wait for corroboration.
	if g.suspended {
		key := p.corroOf[g.key.pid]
		if t := p.corroT[key]; !t.IsZero() && absDuration(t.Sub(g.a.Time)) <= p.cfg.CorroborationWindow {
			g.suspended = false
			return true
		}
		return false
	}
	// Single-source rule: sporadic loss must persist.
	if p.isSporadic(g) && g.a.Count < p.cfg.SporadicMinCount {
		return false
	}
	// Single-source rule: a surge adjacent to an already-emitted surge is
	// the same traffic shifting; filter it.
	if g.a.Type == alert.TypeTrafficSurge && p.adjacentSurgeEmitted(g) {
		g.emitted = true // swallow without output
		g.lastEmit = now
		p.stats.DroppedRelated++
		p.resolveFiltered(g, provenance.FilterRelated)
		return false
	}
	return true
}

// resolveFiltered records a filter drop for the aggregate's head lineage,
// consuming it so no later path can resolve it twice. Called only from the
// serial sweep/pass sections.
func (p *Preprocessor) resolveFiltered(g *aggregate, reason provenance.FilterReason) {
	if p.prov != nil && g.headLineage != 0 {
		p.prov.Filtered(g.headLineage, reason)
		g.headLineage = 0
	}
}

// isSporadic reports whether an aggregate is low-rate packet loss.
func (p *Preprocessor) isSporadic(g *aggregate) bool {
	return g.a.Type == alert.TypePacketLoss && g.a.Value < p.cfg.SporadicLossValue
}

// adjacentSurgeEmitted checks whether a surge at a topologically adjacent
// device has already been emitted. The existence scan is order-free, so
// shard iteration order cannot change the answer.
func (p *Preprocessor) adjacentSurgeEmitted(g *aggregate) bool {
	if p.topo == nil {
		return false
	}
	for s := range p.shards {
		for _, other := range p.shards[s].keys {
			if other.dead || other.a.Type != alert.TypeTrafficSurge || !other.emitted || other == g {
				continue
			}
			if p.topo.Adjacent(g.a.Location, other.a.Location) {
				return true
			}
		}
	}
	return false
}

// emit finalizes an output alert from an aggregate. The emitted Count is
// the delta of raw observations since the previous emission, so downstream
// accumulation stays exact across refreshes.
func (p *Preprocessor) emit(g *aggregate, now time.Time) alert.Alert {
	g.emitted = true
	g.lastEmit = now
	p.nextID++
	p.stats.Out++
	a := g.a
	a.ID = p.nextID
	a.Count = g.a.Count - g.emittedCount
	if a.Count < 1 {
		a.Count = 1
	}
	g.emittedCount = g.a.Count
	// The first emission hands the head lineage to the locator via the
	// structured alert's ID; refreshes carry no lineage.
	if p.prov != nil && g.headLineage != 0 {
		p.prov.Emitted(a.ID, g.headLineage)
		g.headLineage = 0
	}
	return a
}

// Drain flushes every live aggregate regardless of filters; used at
// end-of-trace so batch analyses see pending data. Like Tick, the
// returned slice is reused by the next Tick or Drain call.
func (p *Preprocessor) Drain(now time.Time) []alert.Alert {
	if p.prov != nil {
		p.prov.BeginEmitWindow()
	}
	p.absorb()
	p.emitBuf = p.emitBuf[:0]
	p.sweep(now, func(shard *preShard, g *aggregate) {
		if !g.emitted && !g.suspended && !p.isSporadic(g) {
			p.emitBuf = append(p.emitBuf, p.emit(g, now))
		} else if g.headLineage != 0 {
			switch {
			case g.suspended:
				p.resolveFiltered(g, provenance.FilterUncorroborated)
			case p.isSporadic(g):
				p.resolveFiltered(g, provenance.FilterSporadic)
			default:
				p.resolveFiltered(g, provenance.FilterStale)
			}
		}
		shard.unlink(g)
		g.dead = true
		shard.deleted++
	})
	p.compactKeys()
	return p.emitBuf
}

// shardIndex routes a location to its owning shard with an FNV-1a hash
// over the path segments. Routing only affects which goroutine owns an
// aggregate, never the output; all streams at one location share a
// shard.
func shardIndex(p hierarchy.Path, n int) int {
	if n == 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for l := 1; l <= p.Depth(); l++ {
		s := p.Segment(hierarchy.Level(l))
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // segment terminator so ("ab","c") != ("a","bc")
		h *= prime64
	}
	return int(h % uint64(n))
}

// mergeSortedAggs merges two cmpAgg-sorted, disjoint aggregate lists
// into one, in place on dst's backing array when capacity allows.
func mergeSortedAggs(dst, add []*aggregate) []*aggregate {
	if len(add) == 0 {
		return dst
	}
	if len(dst) == 0 {
		return append(dst, add...)
	}
	n, m := len(dst), len(add)
	dst = append(dst, add...) // grow; tail will be overwritten by the merge
	i, j, w := n-1, m-1, n+m-1
	for j >= 0 {
		if i >= 0 && cmpAgg(add[j], dst[i]) < 0 {
			dst[w] = dst[i]
			i--
		} else {
			dst[w] = add[j]
			j--
		}
		w--
	}
	return dst
}

// cmpAgg orders aggregates for deterministic emission: source, type,
// location, circuit set — the same order the aggKey sort used before
// keys were interned, so output order is unchanged.
func cmpAgg(x, y *aggregate) int {
	if x.a.Source != y.a.Source {
		if x.a.Source < y.a.Source {
			return -1
		}
		return 1
	}
	if x.a.Type != y.a.Type {
		if x.a.Type < y.a.Type {
			return -1
		}
		return 1
	}
	if c := x.a.Location.Compare(y.a.Location); c != 0 {
		return c
	}
	if x.a.CircuitSet != y.a.CircuitSet {
		if x.a.CircuitSet < y.a.CircuitSet {
			return -1
		}
		return 1
	}
	return 0
}

func absDuration(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
