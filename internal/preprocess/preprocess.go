// Package preprocess implements SkyNet's preprocessor (§4.1): it converts
// the raw, per-tool alert streams into the uniform structured format and
// fights the volume problem with three consolidation mechanisms:
//
//  1. Consolidate identical alerts — repeats of the same (source, type,
//     location) collapse into one alert whose End/Count grow (SNMP
//     re-reporting a down interface every round becomes one alert with a
//     duration).
//  2. Consolidate within a data source — sporadic packet loss is ignored
//     until it persists; a traffic surge adjacent to an already-known
//     surge is the same traffic moving and is filtered.
//  3. Consolidate across data sources — a sudden traffic drop alone is
//     expected user behaviour; it passes only when corroborated by a
//     failure or device-error alert nearby.
//
// Syslog lines arrive as free text and are classified through FT-tree
// templates before anything else.
//
// The preprocessor is a stream processor: Add ingests raw alerts, Tick
// advances time and emits the structured survivors.
package preprocess

import (
	"sort"
	"time"

	"skynet/internal/alert"
	"skynet/internal/ftree"
	"skynet/internal/hierarchy"
	"skynet/internal/topology"
)

// Config tunes the preprocessor. Zero value is unusable; start from
// DefaultConfig.
type Config struct {
	// AggWindow is how long an aggregate lives without new observations
	// before it closes. Matches the locator's 5-minute node lifetime.
	AggWindow time.Duration
	// RefreshInterval re-emits a still-active aggregate so downstream
	// trees stay alive ("updates the timestamp of the initial alert").
	RefreshInterval time.Duration
	// CorroborationWindow bounds how long a traffic-drop alert waits for
	// cross-source confirmation before being discarded.
	CorroborationWindow time.Duration
	// SporadicLossValue is the loss ratio below which packet loss is
	// "sporadic" and must persist to pass.
	SporadicLossValue float64
	// SporadicMinCount is how many observations a sporadic-loss aggregate
	// needs before emission.
	SporadicMinCount int
	// CorroborationLevel is the hierarchy level at which cross-source
	// corroboration is evaluated (default: site).
	CorroborationLevel hierarchy.Level
	// DisableCrossSource turns off the cross-source consolidation rule
	// (traffic drops pass without corroboration) — an ablation switch;
	// the paper's design has the rule on.
	DisableCrossSource bool
}

// DefaultConfig returns the production-like defaults.
func DefaultConfig() Config {
	return Config{
		AggWindow:           5 * time.Minute,
		RefreshInterval:     time.Minute,
		CorroborationWindow: 2 * time.Minute,
		SporadicLossValue:   0.05,
		SporadicMinCount:    3,
		CorroborationLevel:  hierarchy.LevelSite,
	}
}

// Stats counts the preprocessor's volume reduction for the Fig. 8b
// experiment.
type Stats struct {
	// In is the number of raw alerts ingested.
	In int
	// Out is the number of structured alerts emitted.
	Out int
	// Deduplicated counts raw alerts absorbed into an existing aggregate.
	Deduplicated int
	// DroppedSporadic counts sporadic losses that never persisted.
	DroppedSporadic int
	// DroppedRelated counts surge alerts filtered as propagation of a
	// neighbour's surge.
	DroppedRelated int
	// DroppedUncorroborated counts traffic drops with no cross-source
	// confirmation.
	DroppedUncorroborated int
	// DroppedUnclassified counts syslog lines matching no labeled
	// template.
	DroppedUnclassified int
}

// aggKey identifies one aggregate: one alert stream at one location.
// Streams of the same type on different circuit sets stay separate so the
// evaluator's per-set ratios survive consolidation.
type aggKey struct {
	src alert.Source
	typ string
	loc hierarchy.Path
	cs  string
}

// aggregate is one live (source, type, location) stream.
type aggregate struct {
	a        alert.Alert
	emitted  bool
	lastEmit time.Time
	lastSeen time.Time
	// emittedCount is how many raw observations have been reported
	// downstream, so refreshes carry deltas rather than re-counting.
	emittedCount int
	suspended    bool // waiting for corroboration (traffic drops)
}

// Preprocessor is the streaming §4.1 stage. Not safe for concurrent use.
type Preprocessor struct {
	cfg        Config
	topo       *topology.Topology
	classifier *ftree.Classifier

	aggs map[aggKey]*aggregate

	// corro records recent corroborating evidence per corroboration-level
	// location: the last time a failure/root-cause alert was seen there.
	corro map[hierarchy.Path]time.Time

	stats  Stats
	nextID uint64
}

// New builds a preprocessor. The classifier may be nil, in which case raw
// syslog lines are dropped as unclassifiable; topo may be nil, disabling
// the adjacency-based related-surge filter.
func New(cfg Config, topo *topology.Topology, classifier *ftree.Classifier) *Preprocessor {
	return &Preprocessor{
		cfg:        cfg,
		topo:       topo,
		classifier: classifier,
		aggs:       make(map[aggKey]*aggregate),
		corro:      make(map[hierarchy.Path]time.Time),
	}
}

// Stats returns a snapshot of the volume counters.
func (p *Preprocessor) Stats() Stats { return p.stats }

// Add ingests one raw alert. Output is produced by Tick.
func (p *Preprocessor) Add(a alert.Alert) {
	p.stats.In++
	// Link-alert split (§4.1): "an alert related to a link is split into
	// two alerts corresponding to the devices it connects". The built-in
	// monitors already emit per-endpoint alerts; this handles externally
	// ingested collectors that report one alert per link.
	if a.CircuitSet != "" && a.Location.IsDevice() && a.Peer.IsDevice() && a.Peer != a.Location {
		mirrored := a
		mirrored.Location, mirrored.Peer = a.Peer, a.Location
		p.ingest(mirrored)
	}
	p.ingest(a)
}

// ingest runs the normalization and consolidation pipeline for one alert.
func (p *Preprocessor) ingest(a alert.Alert) {
	// Syslog classification: free text → type via FT-tree.
	if a.Source == alert.SourceSyslog && a.Type == "" {
		typ, ok := p.classify(a.Raw)
		if !ok {
			p.stats.DroppedUnclassified++
			return
		}
		a.Type = typ
		a.Class = alert.Classify(a.Source, typ)
	}
	if a.Class == alert.ClassInfo && alert.Classify(a.Source, a.Type) != alert.ClassInfo {
		// Normalize class from the catalog when the producer left it
		// unset.
		a.Class = alert.Classify(a.Source, a.Type)
	}
	if a.Count <= 0 {
		a.Count = 1
	}
	if a.End.Before(a.Time) {
		a.End = a.Time
	}
	// Record corroborating evidence for the cross-source rule.
	if a.Class == alert.ClassFailure || a.Class == alert.ClassRootCause {
		key := a.Location.Truncate(p.cfg.CorroborationLevel)
		if t, ok := p.corro[key]; !ok || a.Time.After(t) {
			p.corro[key] = a.Time
		}
	}

	k := aggKey{a.Source, a.Type, a.Location, a.CircuitSet}
	if g, ok := p.aggs[k]; ok {
		// Consolidation 1: identical alert → absorb.
		p.stats.Deduplicated++
		if a.End.After(g.a.End) {
			g.a.End = a.End
		}
		if a.Value > g.a.Value {
			g.a.Value = a.Value
		}
		g.a.Count += a.Count
		g.lastSeen = a.Time
		return
	}
	suspended := a.Type == alert.TypeTrafficDrop && !p.cfg.DisableCrossSource
	p.aggs[k] = &aggregate{a: a, lastSeen: a.Time, suspended: suspended}
}

// classify runs the FT-tree classifier over a raw line.
func (p *Preprocessor) classify(raw string) (string, bool) {
	if p.classifier == nil || raw == "" {
		return "", false
	}
	return p.classifier.ClassifyLine(raw)
}

// Tick advances stream time and returns the structured alerts emitted at
// now: new aggregates that pass the filters, refreshes of long-running
// aggregates, and corroborated traffic drops. Expired aggregates are
// garbage collected.
func (p *Preprocessor) Tick(now time.Time) []alert.Alert {
	var out []alert.Alert
	// Iterate aggregates in a stable order so emission order, assigned
	// IDs, and the related-surge decisions are deterministic (the aggs
	// map itself iterates randomly).
	keys := make([]aggKey, 0, len(p.aggs))
	for k := range p.aggs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessAggKey(keys[i], keys[j]) })
	for _, k := range keys {
		g := p.aggs[k]
		if now.Sub(g.lastSeen) > p.cfg.AggWindow {
			// Aggregate went quiet: account for the never-emitted ones.
			if !g.emitted {
				switch {
				case g.suspended:
					p.stats.DroppedUncorroborated++
				case p.isSporadic(g):
					p.stats.DroppedSporadic++
				}
			}
			delete(p.aggs, k)
			continue
		}
		if g.emitted {
			if now.Sub(g.lastEmit) >= p.cfg.RefreshInterval && g.lastSeen.After(g.lastEmit) {
				out = append(out, p.emit(g, now))
			}
			continue
		}
		if !p.pass(g, now) {
			continue
		}
		out = append(out, p.emit(g, now))
	}
	// Expire stale corroboration evidence.
	for loc, t := range p.corro {
		if now.Sub(t) > p.cfg.CorroborationWindow {
			delete(p.corro, loc)
		}
	}
	return out
}

// pass applies the single-source and cross-source consolidation rules to a
// not-yet-emitted aggregate.
func (p *Preprocessor) pass(g *aggregate, now time.Time) bool {
	// Cross-source rule: traffic drops wait for corroboration.
	if g.suspended {
		key := g.a.Location.Truncate(p.cfg.CorroborationLevel)
		if t, ok := p.corro[key]; ok && absDuration(t.Sub(g.a.Time)) <= p.cfg.CorroborationWindow {
			g.suspended = false
			return true
		}
		return false
	}
	// Single-source rule: sporadic loss must persist.
	if p.isSporadic(g) && g.a.Count < p.cfg.SporadicMinCount {
		return false
	}
	// Single-source rule: a surge adjacent to an already-emitted surge is
	// the same traffic shifting; filter it.
	if g.a.Type == alert.TypeTrafficSurge && p.adjacentSurgeEmitted(g) {
		g.emitted = true // swallow without output
		g.lastEmit = now
		p.stats.DroppedRelated++
		return false
	}
	return true
}

// isSporadic reports whether an aggregate is low-rate packet loss.
func (p *Preprocessor) isSporadic(g *aggregate) bool {
	return g.a.Type == alert.TypePacketLoss && g.a.Value < p.cfg.SporadicLossValue
}

// adjacentSurgeEmitted checks whether a surge at a topologically adjacent
// device has already been emitted.
func (p *Preprocessor) adjacentSurgeEmitted(g *aggregate) bool {
	if p.topo == nil {
		return false
	}
	for k, other := range p.aggs {
		if k.typ != alert.TypeTrafficSurge || !other.emitted || other == g {
			continue
		}
		if p.topo.Adjacent(g.a.Location, k.loc) {
			return true
		}
	}
	return false
}

// emit finalizes an output alert from an aggregate. The emitted Count is
// the delta of raw observations since the previous emission, so downstream
// accumulation stays exact across refreshes.
func (p *Preprocessor) emit(g *aggregate, now time.Time) alert.Alert {
	g.emitted = true
	g.lastEmit = now
	p.nextID++
	p.stats.Out++
	a := g.a
	a.ID = p.nextID
	a.Count = g.a.Count - g.emittedCount
	if a.Count < 1 {
		a.Count = 1
	}
	g.emittedCount = g.a.Count
	return a
}

// Drain flushes every live aggregate regardless of filters; used at
// end-of-trace so batch analyses see pending data.
func (p *Preprocessor) Drain(now time.Time) []alert.Alert {
	var out []alert.Alert
	keys := make([]aggKey, 0, len(p.aggs))
	for k := range p.aggs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return lessAggKey(keys[i], keys[j]) })
	for _, k := range keys {
		g := p.aggs[k]
		if !g.emitted && !g.suspended && !p.isSporadic(g) {
			out = append(out, p.emit(g, now))
		}
		delete(p.aggs, k)
	}
	return out
}

// lessAggKey orders aggregate keys for deterministic iteration.
func lessAggKey(a, b aggKey) bool {
	if a.src != b.src {
		return a.src < b.src
	}
	if a.typ != b.typ {
		return a.typ < b.typ
	}
	if c := a.loc.Compare(b.loc); c != 0 {
		return c < 0
	}
	return a.cs < b.cs
}

func absDuration(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
