package viz

import (
	"strings"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/incident"
	"skynet/internal/topology"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

func setup(t *testing.T) (*topology.Topology, *incident.Incident, *topology.Device) {
	t.Helper()
	topo := topology.MustGenerate(topology.SmallConfig())
	// Incident at a cluster; the faulty device is one ISR.
	cl := topo.Clusters()[0]
	var isr *topology.Device
	for _, id := range topo.DevicesUnder(cl) {
		if topo.Device(id).Role == topology.RoleISR {
			isr = topo.Device(id)
			break
		}
	}
	in := incident.New(1, cl)
	in.Add(alert.Alert{
		Source: alert.SourcePing, Type: alert.TypePacketLoss, Class: alert.ClassFailure,
		Time: epoch, End: epoch, Location: isr.Path, Value: 0.4, Count: 5,
	})
	in.Add(alert.Alert{
		Source: alert.SourceSyslog, Type: alert.TypeHardwareError, Class: alert.ClassRootCause,
		Time: epoch, End: epoch, Location: isr.Path, Count: 2,
	})
	// A neighbor ToR logs a link-down toward the ISR.
	var tor *topology.Device
	for _, id := range topo.Neighbors(isr.ID) {
		if topo.Device(id).Role == topology.RoleToR {
			tor = topo.Device(id)
			break
		}
	}
	in.Add(alert.Alert{
		Source: alert.SourceSyslog, Type: alert.TypeLinkDown, Class: alert.ClassRootCause,
		Time: epoch, End: epoch, Location: tor.Path, Count: 1,
	})
	return topo, in, isr
}

func TestVotingFindsCulprit(t *testing.T) {
	topo, in, isr := setup(t)
	g := Build(topo, in)
	suspect := g.PrimeSuspect()
	if suspect == nil {
		t.Fatal("no suspect")
	}
	if suspect.ID != isr.ID {
		t.Errorf("suspect = %s, want %s", suspect.Name, isr.Name)
	}
	ranked := g.Ranked()
	if len(ranked) < 2 {
		t.Fatalf("ranking too small: %d", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score() > ranked[i-1].Score() {
			t.Error("ranking not descending")
		}
	}
	// The culprit's self votes must reflect its alert counts (5+2).
	if ranked[0].Self != 7 {
		t.Errorf("self votes = %d, want 7", ranked[0].Self)
	}
}

func TestNeighborVotes(t *testing.T) {
	topo, in, isr := setup(t)
	g := Build(topo, in)
	// Every neighbor of the faulty ISR inside the cluster received its 7
	// votes as neighbor votes.
	for _, nb := range topo.Neighbors(isr.ID) {
		v, ok := g.votes[nb]
		if !ok {
			continue // outside the incident scope (e.g. CSRs at site level)
		}
		if v.Neighbor < 7 {
			t.Errorf("neighbor %s got %d votes, want ≥ 7", v.Device.Name, v.Neighbor)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	topo, in, isr := setup(t)
	g := Build(topo, in)
	dot := g.DOT()
	if !strings.HasPrefix(dot, "graph incident {") || !strings.HasSuffix(dot, "}\n") {
		t.Error("malformed DOT envelope")
	}
	if !strings.Contains(dot, isr.Name) {
		t.Error("culprit missing from DOT")
	}
	if !strings.Contains(dot, "fillcolor=red") {
		t.Error("top suspect not highlighted red")
	}
	if !strings.Contains(dot, " -- ") {
		t.Error("no edges drawn")
	}
}

func TestTableOutput(t *testing.T) {
	topo, in, isr := setup(t)
	g := Build(topo, in)
	table := g.Table()
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) < 2 {
		t.Fatal("table too short")
	}
	if !strings.Contains(lines[0], "SCORE") {
		t.Error("missing header")
	}
	if !strings.Contains(lines[1], isr.Name) {
		t.Error("top row is not the culprit")
	}
}

func TestEmptyIncident(t *testing.T) {
	topo := topology.MustGenerate(topology.SmallConfig())
	in := incident.New(1, topo.Clusters()[0])
	g := Build(topo, in)
	if g.PrimeSuspect() != nil {
		t.Error("empty incident has a suspect")
	}
	if dot := g.DOT(); !strings.Contains(dot, "graph incident {") {
		t.Error("empty DOT malformed")
	}
	if len(g.Ranked()) != 0 {
		t.Error("empty incident has ranked votes")
	}
}

func TestAreaAlertsIgnoredGracefully(t *testing.T) {
	topo := topology.MustGenerate(topology.SmallConfig())
	cl := topo.Clusters()[0]
	in := incident.New(1, cl)
	in.Add(alert.Alert{ // area-located alert: no specific device
		Source: alert.SourcePing, Type: alert.TypePacketLoss, Class: alert.ClassFailure,
		Time: epoch, End: epoch, Location: cl, Value: 0.2, Count: 3,
	})
	g := Build(topo, in)
	if g.PrimeSuspect() != nil {
		t.Error("area alert should not produce a device suspect")
	}
}

func TestReflectorCase(t *testing.T) {
	// The §7.1 anecdote: a logic-site incident whose highest-voted device
	// is a route reflector — an unusual device at that level.
	topo := topology.MustGenerate(topology.SmallConfig())
	var rr *topology.Device
	for i := range topo.Devices {
		if topo.Devices[i].Role == topology.RoleReflector {
			rr = &topo.Devices[i]
			break
		}
	}
	if rr == nil {
		t.Fatal("no reflector in topology")
	}
	in := incident.New(1, rr.Attach) // logic-site scope
	in.Add(alert.Alert{
		Source: alert.SourceSyslog, Type: alert.TypeSoftwareError, Class: alert.ClassRootCause,
		Time: epoch, End: epoch, Location: rr.Path, Count: 9,
	})
	for _, nb := range topo.Neighbors(rr.ID) {
		in.Add(alert.Alert{
			Source: alert.SourceSyslog, Type: alert.TypeBGPPeerDown, Class: alert.ClassAbnormal,
			Time: epoch, End: epoch, Location: topo.Device(nb).Path, Count: 1,
		})
	}
	g := Build(topo, in)
	if s := g.PrimeSuspect(); s == nil || s.ID != rr.ID {
		t.Errorf("reflector not identified: %v", s)
	}
}

func TestSVGOutput(t *testing.T) {
	topo, in, isr := setup(t)
	g := Build(topo, in)
	svg := g.SVG()
	if !strings.HasPrefix(svg, `<svg xmlns="http://www.w3.org/2000/svg"`) {
		t.Fatal("not an SVG document")
	}
	// The prime suspect is drawn with the alarm fill.
	if !strings.Contains(svg, "#e0523f") {
		t.Error("prime suspect not highlighted")
	}
	if !strings.Contains(svg, isr.Name[len(isr.Name)-10:]) {
		t.Error("culprit label missing")
	}
	if !strings.Contains(svg, "<line ") {
		t.Error("no edges drawn")
	}
	// Empty graph degrades gracefully.
	empty := Build(topo, incident.New(9, topo.Clusters()[0]))
	if !strings.Contains(empty.SVG(), "no votes") {
		t.Error("empty SVG placeholder missing")
	}
}

func TestSVGEscapesNames(t *testing.T) {
	if escapeXML(`a<b>&"c`) != "a&lt;b&gt;&amp;&quot;c" {
		t.Errorf("escape = %q", escapeXML(`a<b>&"c`))
	}
}
