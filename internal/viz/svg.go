package viz

import (
	"fmt"
	"sort"
	"strings"

	"skynet/internal/topology"
)

// SVG renders the voting graph as a self-contained SVG document with a
// layered layout: device roles stack by their hierarchy attachment (DCBR
// and ISP at the top, ToR at the bottom), edges connect linked devices,
// and fill color encodes the vote score — the browser-native equivalent of
// the Figure 11 frontend.
func (g *Graph) SVG() string {
	ranked := g.Ranked()
	include := map[topology.DeviceID]bool{}
	for _, v := range ranked {
		include[v.Device.ID] = true
		for _, nb := range g.topo.Neighbors(v.Device.ID) {
			if _, ok := g.votes[nb]; ok {
				include[nb] = true
			}
		}
	}
	if len(include) == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="320" height="60">` +
			`<text x="10" y="35" font-family="monospace">no votes in incident scope</text></svg>`
	}

	// Layered layout by role tier.
	tierOf := func(r topology.Role) int {
		switch r {
		case topology.RoleISP:
			return 0
		case topology.RoleDCBR:
			return 1
		case topology.RoleBSR, topology.RoleReflector:
			return 2
		case topology.RoleCSR:
			return 3
		case topology.RoleISR:
			return 4
		default:
			return 5 // ToR
		}
	}
	tiers := map[int][]topology.DeviceID{}
	for id := range include {
		t := tierOf(g.topo.Device(id).Role)
		tiers[t] = append(tiers[t], id)
	}
	const (
		boxW, boxH   = 150, 34
		hGap, vGap   = 18, 56
		marginX      = 20
		marginY      = 20
		labelPadding = 6
	)
	pos := map[topology.DeviceID][2]int{}
	width := 0
	tierKeys := make([]int, 0, len(tiers))
	for t := range tiers {
		tierKeys = append(tierKeys, t)
	}
	sort.Ints(tierKeys)
	for row, t := range tierKeys {
		ids := tiers[t]
		sort.Slice(ids, func(a, b int) bool {
			return g.topo.Device(ids[a]).Name < g.topo.Device(ids[b]).Name
		})
		for col, id := range ids {
			x := marginX + col*(boxW+hGap)
			y := marginY + row*(boxH+vGap)
			pos[id] = [2]int{x, y}
			if x+boxW+marginX > width {
				width = x + boxW + marginX
			}
		}
	}
	height := marginY + len(tierKeys)*(boxH+vGap)

	maxScore := 0
	if len(ranked) > 0 {
		maxScore = ranked[0].Score()
	}
	fill := func(score int) string {
		switch {
		case maxScore > 0 && score == maxScore:
			return "#e0523f" // prime suspect
		case maxScore > 0 && score > maxScore/2:
			return "#e8913f"
		case score > 0:
			return "#e4c33f"
		default:
			return "#e8edf2"
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="10">`,
		width, height)
	b.WriteString("\n")
	// Edges first so boxes draw over them.
	seen := map[[2]topology.DeviceID]bool{}
	for id := range include {
		for _, lid := range g.topo.LinksOf(id) {
			l := g.topo.Link(lid)
			other, _ := l.Other(id)
			if !include[other] {
				continue
			}
			key := [2]topology.DeviceID{id, other}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			p1, p2 := pos[key[0]], pos[key[1]]
			fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#9aa7b3" stroke-width="1"/>`,
				p1[0]+boxW/2, p1[1]+boxH/2, p2[0]+boxW/2, p2[1]+boxH/2)
			b.WriteString("\n")
		}
	}
	// Nodes.
	ids := make([]topology.DeviceID, 0, len(include))
	for id := range include {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		v := g.votes[id]
		p := pos[id]
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" rx="4" fill="%s" stroke="#33414e"/>`,
			p[0], p[1], boxW, boxH, fill(v.Score()))
		b.WriteString("\n")
		name := v.Device.Name
		if len(name) > 22 {
			name = name[len(name)-22:]
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`, p[0]+labelPadding, p[1]+14, escapeXML(name))
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s votes=%d</text>`,
			p[0]+labelPadding, p[1]+27, v.Device.Role, v.Score())
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
