package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"skynet/internal/core"
	"skynet/internal/flood"
	"skynet/internal/monitors"
	"skynet/internal/netsim"
	"skynet/internal/scenario"
	"skynet/internal/topology"
)

// archiveReports writes the detected episode postmortems under
// SKYNET_FLOOD_REPORT_DIR when set (CI uploads that directory as a
// workflow artifact), one subdirectory per test to keep the
// flood-episode-<id>.json names from colliding across cases.
func archiveReports(t *testing.T, eps []flood.Report) {
	t.Helper()
	dir := os.Getenv("SKYNET_FLOOD_REPORT_DIR")
	if dir == "" || len(eps) == 0 {
		return
	}
	sub := filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_"))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	for i := range eps {
		if _, err := flood.WriteReport(sub, &eps[i]); err != nil {
			t.Fatal(err)
		}
	}
}

// floodCase is one scenario workload for the detector property test.
type floodCase struct {
	name string
	scs  []scenario.Scenario
}

// floodCases covers every severe scenario family internal/scenario can
// inject, plus the benign shapes the detector must ignore.
func floodCases(topo *topology.Topology, start time.Time) []floodCase {
	at := start.Add(10 * time.Minute)
	big, crit := scenario.ConcurrentIncidents(topo, at)
	gen := scenario.NewGenerator(topo, 7)
	power := gen.Random(scenario.CatInfrastructure, at)
	route := gen.Random(scenario.CatRoute, at)
	minor := gen.Minor(at)
	return []floodCase{
		{"fiber-cut", []scenario.Scenario{scenario.FiberCutSevere(topo, at)}},
		{"ddos-multi", scenario.DDoSMultiSite(topo, 3, at)},
		{"concurrent", []scenario.Scenario{big, crit}},
		{"hash-hw", []scenario.Scenario{scenario.UnbalancedHashCase(topo, at)}},
		{"power", []scenario.Scenario{power}},
		{"route", []scenario.Scenario{route}},
		{"minor-benign", []scenario.Scenario{minor}},
		{"quiet", nil},
	}
}

// TestReplayFloodEpisodes is the detector's ground-truth property test:
// every injected severe scenario must land inside exactly one detected
// flood episode, benign workloads must detect none, and the full episode
// record — boundaries, timelines, aggregates — must be bit-identical at
// workers {1, 2, 4, 8}. Under -race this also exercises the recorder's
// locking against the parallel pipeline.
func TestReplayFloodEpisodes(t *testing.T) {
	topo, err := topology.Generate(topology.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)
	for _, c := range floodCases(topo, start) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			sim := netsim.New(topo, 1)
			for i := range c.scs {
				if err := c.scs[i].Inject(sim); err != nil {
					t.Fatal(err)
				}
			}
			mcfg := monitors.DefaultConfig()
			fleet := monitors.NewFleet(topo, mcfg)
			alerts, err := fleet.Run(sim, start, start.Add(40*time.Minute), mcfg.PingInterval)
			if err != nil {
				t.Fatal(err)
			}
			refs := make([]flood.ScenarioRef, 0, len(c.scs))
			severe := 0
			for _, sc := range c.scs {
				refs = append(refs, flood.ScenarioRef{
					Name: sc.Name, Severe: sc.Severe, Start: sc.Start, End: sc.End,
				})
				if sc.Severe {
					severe++
				}
			}
			var ref string
			for _, workers := range []int{1, 2, 4, 8} {
				cfg := core.DefaultConfig()
				cfg.Workers = workers
				rec := flood.New(flood.Config{})
				if _, err := ReplayWithOptions(alerts, topo, cfg, ReplayOptions{
					Tick:  10 * time.Second,
					Flood: rec,
				}); err != nil {
					t.Fatal(err)
				}
				eps := rec.Episodes()
				if severe == 0 {
					if len(eps) != 0 {
						t.Fatalf("workers=%d: benign workload detected %d episodes: %+v",
							workers, len(eps), eps)
					}
				} else {
					for name, n := range flood.MatchScenarios(eps, refs) {
						if n != 1 {
							t.Errorf("workers=%d: severe scenario %q overlaps %d episodes, want exactly 1",
								workers, name, n)
						}
					}
					for i := range eps {
						if eps[i].Scenario == "" {
							continue
						}
						if lag := eps[i].DetectionLag; lag < -time.Minute || lag > 10*time.Minute {
							t.Errorf("workers=%d: episode %d detection lag %v vs scenario %q outside (-1m, 10m)",
								workers, eps[i].ID, lag, eps[i].Scenario)
						}
					}
				}
				fp := rec.Fingerprint()
				if workers == 1 {
					ref = fp
					archiveReports(t, eps)
				} else if fp != ref {
					t.Errorf("workers=%d: flood fingerprint diverged from the serial reference", workers)
				}
			}
		})
	}
}

// TestReplayFloodDoesNotPerturb replays one generated multi-scenario
// trace with and without the flood recorder attached and checks the
// incident population is bit-identical — forensics must observe the
// pipeline, never steer it.
func TestReplayFloodDoesNotPerturb(t *testing.T) {
	gen := DefaultGenerateOptions()
	gen.Scenarios = 2
	gen.Window = 20 * time.Minute
	g, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	refEng, err := Replay(g.Alerts, g.Topo, cfg, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ref := replayFingerprint(refEng)
	if ref == "" {
		t.Fatal("reference replay produced no incidents to compare")
	}
	for _, workers := range []int{1, 4} {
		cfg := core.DefaultConfig()
		cfg.Workers = workers
		rec := flood.New(flood.Config{})
		eng, err := ReplayWithOptions(g.Alerts, g.Topo, cfg, ReplayOptions{
			Tick:  10 * time.Second,
			Flood: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := replayFingerprint(eng); got != ref {
			t.Errorf("workers=%d: flood-observed replay diverged from the plain reference", workers)
		}
	}
}
