package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"skynet/internal/core"
	"skynet/internal/fanout"
	"skynet/internal/hierarchy"
	"skynet/internal/provenance"
	"skynet/internal/slo"
	"skynet/internal/telemetry"
	"skynet/internal/tsdb"
)

// breachModel is the forced tick-latency SLO breach: benign 1 ms ticks
// until breachAt, then a sustained 5x violation of the 100 ms target.
func breachModel(breachAt uint64) func(uint64) time.Duration {
	return func(tick uint64) time.Duration {
		if tick >= breachAt {
			return 500 * time.Millisecond
		}
		return time.Millisecond
	}
}

// benignModel keeps every tick far inside the latency target.
func benignModel(uint64) time.Duration { return time.Millisecond }

// historySnapshot renders the store without a wall-clock stamp — the
// byte string the bit-identity comparison runs on.
func historySnapshot(t *testing.T, db *tsdb.DB) string {
	t.Helper()
	var buf bytes.Buffer
	if err := db.SnapshotTo(&buf, time.Time{}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// sloEventLog renders the burn-event sequence as a comparable string.
func sloEventLog(events []slo.Event) string {
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "%d %s firing=%t fast=%.6f slow=%.6f\n",
			ev.Tick, ev.Rule, ev.Firing, ev.FastBurn, ev.SlowBurn)
	}
	return b.String()
}

// TestReplayHistoryDeterministic is the tentpole's bit-identity property
// test: one generated multi-scenario trace replayed at workers
// {1, 2, 4, 8} with the sampler, the burn-rate engine, the
// self-monitoring loop, the pprof stage labeler, AND the runtime/metrics
// sampler all on (under a deterministic breach latency model) must
// produce byte-identical history snapshots, identical SLO burn-event
// sequences, and identical incident populations — and the compressed
// history must stay under the 8 MiB residency budget. The profiler and
// runtime sampler are deliberately enabled here: labels must never
// perturb pipeline output, and DeterministicFilter must keep the
// host-dependent skynet_runtime_ series out of the snapshot.
func TestReplayHistoryDeterministic(t *testing.T) {
	gen := DefaultGenerateOptions()
	gen.Scenarios = 4
	gen.Window = 30 * time.Minute
	g, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	var refSnap, refEvents, refInc, refFeed, refStream string
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := core.DefaultConfig()
		cfg.Workers = workers
		reg := telemetry.New()
		db := tsdb.New(tsdb.Config{Filter: tsdb.DeterministicFilter})
		// The fan-out serving layer rides along (ring sized to keep the
		// whole replay's deltas live): publishing must not perturb any
		// pipeline output, and the feed itself must be bit-identical
		// across worker counts.
		hub := fanout.NewHub(fanout.Config{Ring: 16384})
		eng, err := ReplayWithOptions(g.Alerts, g.Topo, cfg, ReplayOptions{
			Telemetry:        reg,
			History:          db,
			SLORules:         slo.DefaultRules(100 * time.Millisecond),
			SelfMonitor:      true,
			TickLatencyModel: breachModel(40),
			Profile:          true,
			RuntimeMetrics:   true,
			Fanout:           hub,
		})
		if err != nil {
			t.Fatal(err)
		}
		if eng.SLOEngine().EventCount() == 0 {
			t.Fatalf("workers=%d: breach model never produced a burn event", workers)
		}
		snap := historySnapshot(t, db)
		events := sloEventLog(eng.SLOEngine().Events())
		inc := replayFingerprint(eng)
		feed, stream := fanoutFingerprint(t, hub)
		hub.Close()
		if mem := db.MemoryBytes(); mem >= 8<<20 {
			t.Errorf("workers=%d: history store resident %d bytes, want < 8 MiB", workers, mem)
		}
		if workers == 1 {
			refSnap, refEvents, refInc, refFeed, refStream = snap, events, inc, feed, stream
			continue
		}
		if snap != refSnap {
			t.Errorf("workers=%d: history snapshot diverged from the serial reference (%d vs %d bytes)",
				workers, len(snap), len(refSnap))
		}
		if events != refEvents {
			t.Errorf("workers=%d: burn-event sequence diverged:\n%s\nvs serial:\n%s", workers, events, refEvents)
		}
		if inc != refInc {
			t.Errorf("workers=%d: incident population diverged under self-monitoring", workers)
		}
		if feed != refFeed {
			t.Errorf("workers=%d: fan-out snapshot frame diverged from the serial reference", workers)
		}
		if stream != refStream {
			t.Errorf("workers=%d: fan-out delta stream diverged from the serial reference", workers)
		}
	}
}

// fanoutFingerprint drains the serving hub after a replay and returns
// (final snapshot frame, merged delta stream) as comparable strings.
// Both must be byte-identical for every worker count: the snapshot is
// the feed state the last tick encoded, and the merged delta folds the
// whole replay's per-tick deltas through the hub's deterministic
// coalescing merge.
func fanoutFingerprint(t *testing.T, hub *fanout.Hub) (string, string) {
	t.Helper()
	fresh, err := hub.Subscribe(fanout.SubscribeOptions{Cursor: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	frames, _, err := fresh.Poll()
	if err != nil {
		t.Fatal(err)
	}
	// Snapshots go out on the hub's cadence, so a fresh subscriber gets
	// the latest snapshot plus one merged delta covering the ticks since.
	if len(frames) == 0 || frames[0].Kind() != fanout.KindSnapshot {
		t.Fatalf("fresh subscriber after replay: want snapshot first, got %d frames", len(frames))
	}
	var feedB strings.Builder
	for _, f := range frames {
		feedB.Write(f.Bytes())
	}
	feed := feedB.String()
	fresh.ReleaseAll(frames)

	// Resume right after the first delta: everything else coalesces
	// into one merged frame covering the whole replay window.
	resumed, err := hub.Subscribe(fanout.SubscribeOptions{Cursor: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	frames, _, err = resumed.Poll()
	if err != nil {
		t.Fatal(err)
	}
	var stream strings.Builder
	for _, f := range frames {
		stream.Write(f.Bytes())
	}
	resumed.ReleaseAll(frames)
	return feed, stream.String()
}

// TestReplaySelfMonitorBreach pins the self-monitoring loop end to end:
// a forced tick-latency breach must surface as a first-class incident
// rooted in the reserved meta/skynetd subtree with a provenance chain,
// while the identical benign run raises no self-alerts and no meta
// incidents.
func TestReplaySelfMonitorBreach(t *testing.T) {
	gen := DefaultGenerateOptions()
	gen.Scenarios = 2
	gen.Window = 30 * time.Minute
	g, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	run := func(model func(uint64) time.Duration) (*core.Engine, *provenance.Recorder) {
		t.Helper()
		cfg := core.DefaultConfig()
		prov := provenance.New(provenance.Config{SampleEvery: 1})
		eng, err := ReplayWithOptions(g.Alerts, g.Topo, cfg, ReplayOptions{
			Telemetry:        telemetry.New(),
			Provenance:       prov,
			History:          tsdb.New(tsdb.Config{Filter: tsdb.DeterministicFilter}),
			SLORules:         slo.DefaultRules(100 * time.Millisecond),
			SelfMonitor:      true,
			TickLatencyModel: model,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng, prov
	}

	benign, _ := run(benignModel)
	if n := benign.SelfAlerts(); n != 0 {
		t.Fatalf("benign run injected %d self-alerts", n)
	}
	for _, in := range benign.AllIncidents() {
		if hierarchy.IsMeta(in.Root) {
			t.Fatalf("benign run raised meta incident %d at %s", in.ID, in.Root)
		}
	}

	breached, prov := run(breachModel(40))
	if n := breached.SelfAlerts(); n == 0 {
		t.Fatal("breach run injected no self-alerts")
	}
	var meta []int
	for _, in := range breached.AllIncidents() {
		if !hierarchy.IsMeta(in.Root) {
			continue
		}
		meta = append(meta, in.ID)
		doc := prov.Explain(in)
		if doc == nil {
			t.Fatalf("meta incident %d has no provenance document", in.ID)
		}
		// The synthetic alerts travel the ordinary ingest path, so the
		// incident's provenance chain must attribute real lineage.
		if doc.Trigger == nil || doc.Trigger.Rule == "" {
			t.Errorf("meta incident %d: provenance has no trigger record", in.ID)
		}
		if len(doc.Evidence) == 0 {
			t.Errorf("meta incident %d: provenance has no evidence streams", in.ID)
		}
	}
	if len(meta) == 0 {
		t.Fatal("forced tick-latency breach raised no meta/skynetd incident")
	}
}
