package trace

import (
	"testing"
	"time"

	"skynet/internal/core"
	"skynet/internal/span"
	"skynet/internal/telemetry"
)

// TestReplayTracingBitEqual replays one generated trace with span tracing
// attached at workers {1, 2, 4, 8} and checks the incident population is
// bit-identical to the untraced serial reference — tracing must observe
// the pipeline without perturbing it. Under -race this also exercises the
// fork slot writes at real parallelism.
func TestReplayTracingBitEqual(t *testing.T) {
	gen := DefaultGenerateOptions()
	gen.Scenarios = 2
	gen.Window = 20 * time.Minute
	g, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	refEng, err := Replay(g.Alerts, g.Topo, cfg, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ref := replayFingerprint(refEng)
	if ref == "" {
		t.Fatal("reference replay produced no incidents to compare")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := core.DefaultConfig()
		cfg.Workers = workers
		tracer := span.NewTracer(0)
		eng, err := ReplayWithOptions(g.Alerts, g.Topo, cfg, ReplayOptions{
			Tick:      10 * time.Second,
			Tracer:    tracer,
			Telemetry: telemetry.New(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := replayFingerprint(eng); got != ref {
			t.Errorf("workers=%d: traced replay diverged from untraced serial reference", workers)
		}
		if tracer.TickCount() == 0 {
			t.Fatalf("workers=%d: tracer recorded no ticks", workers)
		}
	}
}

// TestReplayTracingSpanNames checks that one traced replay records every
// pipeline stage the issue names: the stage spans, their sub-phases, and
// the parallel fan-outs with shard ids.
func TestReplayTracingSpanNames(t *testing.T) {
	gen := DefaultGenerateOptions()
	gen.Scenarios = 2
	gen.Window = 20 * time.Minute
	g, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Workers = 4
	tracer := span.NewTracer(0)
	if _, err := ReplayWithOptions(g.Alerts, g.Topo, cfg, ReplayOptions{
		Tick:   10 * time.Second,
		Tracer: tracer,
	}); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	sharded := map[string]bool{}
	for _, st := range tracer.StageStats() {
		seen[st.Name] = true
	}
	slow, ok := tracer.Slowest()
	if !ok {
		t.Fatal("no slowest trace retained")
	}
	if slow.Dur <= 0 || len(slow.Spans) == 0 {
		t.Fatalf("slowest trace malformed: dur=%v spans=%d", slow.Dur, len(slow.Spans))
	}
	for _, tr := range tracer.Last(0) {
		for i := range tr.Spans {
			if tr.Spans[i].Shard >= 0 {
				sharded[tr.Spans[i].Name] = true
			}
		}
	}
	for _, name := range []string{
		"tick", "preprocess", "classify", "consolidate", "sweep",
		"locate", "addbatch", "addbatch_fan", "check", "expire",
		"components", "compcount", "evaluate", "refine_score", "sop",
	} {
		if !seen[name] {
			t.Errorf("span %q never recorded; stages seen: %v", name, keys(seen))
		}
	}
	for _, name := range []string{"classify", "consolidate", "addbatch_fan", "expire", "refine_score"} {
		if !sharded[name] {
			t.Errorf("fork %q recorded no shard spans", name)
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
