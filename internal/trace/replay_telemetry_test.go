package trace

import (
	"testing"
	"time"

	"skynet/internal/core"
	"skynet/internal/telemetry"
)

func TestReplayWithOptionsRecordsTelemetry(t *testing.T) {
	opts := DefaultGenerateOptions()
	opts.Window = 15 * time.Minute
	opts.Scenarios = 1
	g, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	j := telemetry.NewJournal(0)
	eng, err := ReplayWithOptions(g.Alerts, g.Topo, core.DefaultConfig(),
		ReplayOptions{Telemetry: reg, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]telemetry.MetricSnapshot{}
	for _, m := range reg.Snapshot() {
		vals[m.Name] = m
	}
	if got := vals["skynet_replay_alerts_total"].Value; int(got) != len(g.Alerts) {
		t.Errorf("replay alerts = %v, want %d", got, len(g.Alerts))
	}
	if got := vals["skynet_raw_alerts_total"].Value; int(got) != eng.RawIngested() {
		t.Errorf("raw counter = %v, engine saw %d", got, eng.RawIngested())
	}
	if vals["skynet_replay_alerts_per_second"].Value <= 0 {
		t.Error("throughput gauge not set")
	}
	tick := vals["skynet_tick_seconds"].Hist
	if tick == nil || tick.Count == 0 {
		t.Fatal("no tick timings recorded")
	}
	// Journal events are stamped with simulated time, inside the trace's
	// window (plus the TTL drain).
	events := j.Events()
	if len(events) == 0 {
		t.Fatal("journal empty after replaying a failure scenario")
	}
	lo := g.Alerts[0].Time
	hi := g.Alerts[len(g.Alerts)-1].Time.Add(core.DefaultConfig().Locator.NodeTTL + time.Hour)
	for _, e := range events {
		if e.Time.Before(lo) || e.Time.After(hi) {
			t.Fatalf("event %d stamped %v, outside simulated window [%v, %v]",
				e.Seq, e.Time, lo, hi)
		}
	}
}

func TestReplayPlainMatchesInstrumented(t *testing.T) {
	opts := DefaultGenerateOptions()
	opts.Window = 12 * time.Minute
	opts.Scenarios = 1
	g, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Replay(g.Alerts, g.Topo, core.DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := ReplayWithOptions(g.Alerts, g.Topo, core.DefaultConfig(),
		ReplayOptions{Telemetry: telemetry.New(), Journal: telemetry.NewJournal(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.AllIncidents()) != len(inst.AllIncidents()) {
		t.Errorf("instrumented replay diverged: %d vs %d incidents",
			len(plain.AllIncidents()), len(inst.AllIncidents()))
	}
}
