package trace

import (
	"testing"
	"time"

	"skynet/internal/core"
	"skynet/internal/monitors"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

// columnarCases mirrors the flood-replay catalog: every severe scenario
// family internal/scenario can inject, plus benign and quiet workloads.
func columnarCases(topo *topology.Topology, start time.Time) []floodCase {
	return floodCases(topo, start)
}

// TestReplayColumnarBitIdentical runs the full scenario catalog through
// the columnar ingest path (Engine.IngestBatch on a reused batch) at
// workers {1, 2, 4, 8} and requires the incident population — IDs,
// severity bits, zoom-in verdicts, rendered reports — to be bit-identical
// to the per-alert serial reference. Under -race this doubles as a
// concurrency check of batch absorption against the sharded stages.
func TestReplayColumnarBitIdentical(t *testing.T) {
	topo, err := topology.Generate(topology.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)
	for _, c := range columnarCases(topo, start) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			sim := netsim.New(topo, 1)
			for i := range c.scs {
				if err := c.scs[i].Inject(sim); err != nil {
					t.Fatal(err)
				}
			}
			mcfg := monitors.DefaultConfig()
			fleet := monitors.NewFleet(topo, mcfg)
			alerts, err := fleet.Run(sim, start, start.Add(40*time.Minute), mcfg.PingInterval)
			if err != nil {
				t.Fatal(err)
			}

			// Reference: per-alert ingest, fully serial.
			refCfg := core.DefaultConfig()
			refCfg.Workers = 1
			refEng, err := ReplayWithOptions(alerts, topo, refCfg, ReplayOptions{Tick: 10 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			ref := replayFingerprint(refEng)
			severe := 0
			for _, sc := range c.scs {
				if sc.Severe {
					severe++
				}
			}
			if severe > 0 && ref == "" {
				t.Fatal("reference replay produced no incidents to compare")
			}

			for _, workers := range []int{1, 2, 4, 8} {
				cfg := core.DefaultConfig()
				cfg.Workers = workers
				eng, err := ReplayWithOptions(alerts, topo, cfg, ReplayOptions{
					Tick:     10 * time.Second,
					Columnar: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := replayFingerprint(eng); got != ref {
					t.Errorf("workers=%d: columnar replay diverged from per-alert serial reference", workers)
				}
			}
		})
	}
}

// TestReplayColumnarScenario is a quick sanity check that the columnar
// path still detects a generated multi-scenario workload end to end.
func TestReplayColumnarScenario(t *testing.T) {
	gen := DefaultGenerateOptions()
	gen.Scenarios = 2
	gen.Window = 20 * time.Minute
	g, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	eng, err := ReplayWithOptions(g.Alerts, g.Topo, cfg, ReplayOptions{Columnar: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.AllIncidents()) == 0 {
		t.Fatal("columnar replay produced no incidents")
	}
}
