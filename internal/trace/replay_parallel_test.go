package trace

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"skynet/internal/core"
)

// replayFingerprint renders every incident a replay produced, with exact
// severity bits, for strict cross-run comparison.
func replayFingerprint(eng *core.Engine) string {
	var b strings.Builder
	for _, in := range eng.AllIncidents() {
		fmt.Fprintf(&b, "#%d sev=%x active=%v zoomed=%s\n%s",
			in.ID, in.Severity, in.Active(), in.Zoomed, in.Render())
	}
	return b.String()
}

// TestReplayDeterministicAcrossGOMAXPROCS replays one generated trace
// under every combination of GOMAXPROCS ∈ {1, 2, 8} and pipeline workers
// ∈ {1, 4}: the serial engine at one core is the reference, and every
// parallel configuration must reproduce its incident population bit for
// bit. Under -race this doubles as a concurrency check of the sharded
// stages at real parallelism.
func TestReplayDeterministicAcrossGOMAXPROCS(t *testing.T) {
	gen := DefaultGenerateOptions()
	gen.Scenarios = 2
	gen.Window = 20 * time.Minute
	g, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Alerts) == 0 {
		t.Fatal("generated trace is empty")
	}
	run := func(workers int) string {
		cfg := core.DefaultConfig()
		cfg.Workers = workers
		eng, err := Replay(g.Alerts, g.Topo, cfg, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return replayFingerprint(eng)
	}

	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	ref := run(1)
	if ref == "" {
		t.Fatal("reference replay produced no incidents to compare")
	}
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 4} {
			if got := run(workers); got != ref {
				t.Errorf("GOMAXPROCS=%d workers=%d: replay diverged from serial reference", procs, workers)
			}
		}
	}
}
