// Package trace reads and writes alert traces: JSON Lines files of raw
// alerts, optionally gzip-compressed. Traces decouple workload generation
// from analysis — generate once with skynet-gen, replay many times with
// skynet-replay or the benchmarks.
package trace

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"skynet/internal/alert"
	"skynet/internal/core"
	"skynet/internal/fanout"
	"skynet/internal/flood"
	"skynet/internal/ftree"
	"skynet/internal/monitors"
	"skynet/internal/netsim"
	"skynet/internal/preprocess"
	"skynet/internal/prof"
	"skynet/internal/provenance"
	"skynet/internal/scenario"
	"skynet/internal/slo"
	"skynet/internal/span"
	"skynet/internal/telemetry"
	"skynet/internal/topology"
	"skynet/internal/tsdb"
)

// Write stores alerts to a file. Paths ending in ".gz" are compressed.
func Write(path string, alerts []alert.Alert) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: close %s: %w", path, cerr)
		}
	}()
	var w io.Writer = f
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		defer func() {
			if cerr := gz.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("trace: gzip close: %w", cerr)
			}
		}()
		w = gz
	}
	if err := alert.WriteAll(w, alerts); err != nil {
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	return nil
}

// Read loads a trace file written by Write.
func Read(path string) ([]alert.Alert, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open %s: %w", path, err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("trace: gzip %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	alerts, err := alert.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: read %s: %w", filepath.Base(path), err)
	}
	return alerts, nil
}

// GenerateOptions configures synthetic trace generation.
type GenerateOptions struct {
	// Topology to simulate over.
	Topology topology.Config
	// Monitors configures the fleet.
	Monitors monitors.Config
	// Scenarios is how many failure scenarios to inject with the Figure 1
	// category mix.
	Scenarios int
	// Spacing separates scenario start times.
	Spacing time.Duration
	// Window is the total simulated duration.
	Window time.Duration
	// Start anchors simulated time.
	Start time.Time
	// Seed drives all randomness.
	Seed int64
}

// DefaultGenerateOptions returns a small, fast workload.
func DefaultGenerateOptions() GenerateOptions {
	return GenerateOptions{
		Topology:  topology.SmallConfig(),
		Monitors:  monitors.DefaultConfig(),
		Scenarios: 3,
		Spacing:   20 * time.Minute,
		Window:    time.Hour,
		Start:     time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC),
		Seed:      1,
	}
}

// Generated bundles a synthetic trace with its ground truth.
type Generated struct {
	Alerts    []alert.Alert
	Scenarios []scenario.Scenario
	Topo      *topology.Topology
}

// Generate produces a raw alert trace by simulating scenarios under the
// monitor fleet.
func Generate(opts GenerateOptions) (*Generated, error) {
	topo, err := topology.Generate(opts.Topology)
	if err != nil {
		return nil, err
	}
	sim := netsim.New(topo, opts.Seed)
	gen := scenario.NewGenerator(topo, opts.Seed)
	scs := gen.Draw(opts.Scenarios, opts.Start.Add(2*time.Minute), opts.Spacing)
	for i := range scs {
		if err := scs[i].Inject(sim); err != nil {
			return nil, err
		}
	}
	fleet := monitors.NewFleet(topo, opts.Monitors)
	alerts, err := fleet.Run(sim, opts.Start, opts.Start.Add(opts.Window), opts.Monitors.PingInterval)
	if err != nil {
		return nil, err
	}
	return &Generated{Alerts: alerts, Scenarios: scs, Topo: topo}, nil
}

// ReplayOptions extends Replay with observability hooks. The zero value
// reproduces plain Replay.
type ReplayOptions struct {
	// Tick is the pipeline cadence (default 10 s).
	Tick time.Duration
	// Telemetry, when set, instruments the engine and records replay
	// throughput on the registry.
	Telemetry *telemetry.Registry
	// Journal, when set, receives incident lifecycle events stamped with
	// simulated time.
	Journal *telemetry.Journal
	// Provenance, when set, records per-alert lineage and per-incident
	// trigger/score evidence on the recorder.
	Provenance *provenance.Recorder
	// Tracer, when set, records a span tree per tick into its ring —
	// the data behind `skynet-replay -spans`.
	Tracer *span.Tracer
	// Flood, when set, detects flood episodes during the replay and
	// accumulates per-episode postmortem reports — the data behind
	// `skynet-replay -floods`. Tick wall latency feeds its Perf section.
	Flood *flood.Recorder
	// Columnar routes ingestion through the engine's batch path
	// (core.Engine.IngestBatch on a reused alert.Batch, flushed before
	// every tick) instead of per-alert Ingest. Output is identical; the
	// columnar path is what the ingest listeners feed in production.
	Columnar bool
	// History, when set (Telemetry required), samples every registry
	// metric once per tick into the tick-indexed store — the data behind
	// `skynet-replay -history`. Configure the store with
	// tsdb.DeterministicFilter to keep replay snapshots bit-identical
	// across worker counts.
	History *tsdb.DB
	// SLORules, when non-empty (History required), attaches a burn-rate
	// engine evaluated over the store after every tick.
	SLORules []slo.Rule
	// SelfMonitor converts SLO burn verdicts into synthetic meta/skynetd
	// alerts injected through the engine's own ingest path.
	SelfMonitor bool
	// TickLatencyModel, when set, replaces the measured tick latency fed
	// to the history store and SLO engine with a deterministic function
	// of the tick index — the forced-breach hook for replay tests.
	TickLatencyModel func(tick uint64) time.Duration
	// Profile runs the replay under pprof stage labels (a prof.Labeler
	// sized to the engine's widest fan-out). Labels only change what a
	// concurrently captured profile attributes, never the pipeline's
	// output — the bit-identity tests replay with this on.
	Profile bool
	// RuntimeMetrics attaches a runtime/metrics sampler (Telemetry
	// required): skynet_runtime_ gauges refresh every tick. The series
	// are host-dependent; tsdb.DeterministicFilter excludes them, so
	// deterministic history snapshots are unaffected.
	RuntimeMetrics bool
	// Fanout, when set, attaches the snapshot+delta serving hub: every
	// tick publishes one encoded feed snapshot plus delta into the
	// hub's ring. Publishing changes no pipeline state, so replays stay
	// bit-identical; skynet_fanout_ metrics are subscriber-dependent
	// and excluded by tsdb.DeterministicFilter.
	Fanout *fanout.Hub
}

// Replay pushes a raw trace through a fresh engine, ticking at the given
// cadence, and returns the engine for inspection.
func Replay(alerts []alert.Alert, topo *topology.Topology, engineCfg core.Config, tick time.Duration) (*core.Engine, error) {
	return ReplayWithOptions(alerts, topo, engineCfg, ReplayOptions{Tick: tick})
}

// ReplayWithOptions is Replay with telemetry attached: stage timings and
// funnel counters accumulate on opts.Telemetry, lifecycle events on
// opts.Journal, and the replay's own wall-clock throughput is published
// as skynet_replay_* metrics.
func ReplayWithOptions(alerts []alert.Alert, topo *topology.Topology, engineCfg core.Config, opts ReplayOptions) (*core.Engine, error) {
	classifier, err := preprocessClassifier()
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(engineCfg, topo, classifier, nil, nil)
	if opts.Telemetry != nil || opts.Journal != nil {
		eng.EnableTelemetry(opts.Telemetry, opts.Journal)
	}
	if opts.Provenance != nil {
		eng.EnableProvenance(opts.Provenance)
	}
	if opts.Tracer != nil {
		eng.EnableTracing(opts.Tracer)
	}
	if opts.Flood != nil {
		eng.EnableFlood(opts.Flood)
	}
	if opts.Profile {
		eng.EnableProfiling(prof.NewLabeler(eng.MaxShards()))
	}
	if opts.RuntimeMetrics && opts.Telemetry != nil {
		eng.EnableRuntimeMetrics(prof.NewRuntime(opts.Telemetry))
	}
	if opts.Fanout != nil {
		eng.EnableFanout(opts.Fanout)
	}
	if opts.History != nil {
		eng.EnableHistory(tsdb.NewSampler(opts.History, opts.Telemetry))
		if len(opts.SLORules) > 0 {
			eng.EnableSLO(slo.New(opts.History, opts.SLORules), opts.SelfMonitor)
		}
		if opts.TickLatencyModel != nil {
			eng.SetTickLatencyModel(opts.TickLatencyModel)
		}
	}
	// tickOnce advances the engine one tick; with a flood recorder the
	// tick's wall latency feeds the open episode's Perf section (the
	// deterministic episode state never sees it).
	tickOnce := func(at time.Time) {
		if opts.Flood == nil {
			eng.Tick(at)
			return
		}
		t0 := time.Now()
		eng.Tick(at)
		opts.Flood.ObservePerf(time.Since(t0), 0)
	}
	var start time.Time
	if opts.Telemetry != nil {
		start = time.Now()
	}
	if len(alerts) > 0 {
		tick := opts.Tick
		if tick <= 0 {
			tick = 10 * time.Second
		}
		// In columnar mode alerts accumulate into a reused batch that is
		// flushed right before each tick — the same order the per-alert
		// path ingests them in, so replays are bit-identical either way.
		var batch alert.Batch
		flush := func() {
			if batch.Len() > 0 {
				eng.IngestBatch(&batch)
				batch.Reset()
			}
		}
		next := alerts[0].Time.Add(tick)
		for i := range alerts {
			for alerts[i].Time.After(next) {
				flush()
				tickOnce(next)
				next = next.Add(tick)
			}
			if opts.Columnar {
				batch.Append(&alerts[i])
			} else {
				eng.Ingest(alerts[i])
			}
		}
		flush()
		end := alerts[len(alerts)-1].Time.Add(engineCfg.Locator.NodeTTL + tick)
		for !next.After(end) {
			tickOnce(next)
			next = next.Add(tick)
		}
	}
	if opts.Telemetry != nil {
		elapsed := time.Since(start).Seconds()
		opts.Telemetry.Counter("skynet_replay_alerts_total",
			"Raw alerts pushed through the replay engine.").Add(int64(len(alerts)))
		opts.Telemetry.Gauge("skynet_replay_seconds",
			"Wall time of the last trace replay.").Set(elapsed)
		if elapsed > 0 {
			opts.Telemetry.Gauge("skynet_replay_alerts_per_second",
				"Replay ingest throughput of the last trace replay.").Set(float64(len(alerts)) / elapsed)
		}
	}
	return eng, nil
}

// preprocessClassifier builds the bootstrap syslog classifier used by
// replays (traces carry raw lines).
func preprocessClassifier() (*ftree.Classifier, error) {
	return preprocess.BootstrapClassifier()
}
