package trace

import (
	"path/filepath"
	"testing"
	"time"

	"skynet/internal/core"
)

func TestGenerateProducesGroundTruthWorkload(t *testing.T) {
	opts := DefaultGenerateOptions()
	opts.Window = 20 * time.Minute
	opts.Scenarios = 2
	opts.Spacing = 8 * time.Minute
	g, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Alerts) == 0 {
		t.Fatal("no alerts generated")
	}
	if len(g.Scenarios) != 2 {
		t.Fatalf("scenarios = %d", len(g.Scenarios))
	}
	for i := 1; i < len(g.Alerts); i++ {
		if g.Alerts[i].Time.Before(g.Alerts[i-1].Time) {
			t.Fatal("trace not time-ordered")
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	opts := DefaultGenerateOptions()
	opts.Window = 10 * time.Minute
	opts.Scenarios = 1
	g, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"trace.jsonl", "trace.jsonl.gz"} {
		path := filepath.Join(t.TempDir(), name)
		if err := Write(path, g.Alerts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := Read(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(g.Alerts) {
			t.Errorf("%s: read %d of %d", name, len(got), len(g.Alerts))
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read("/nonexistent/path.jsonl"); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.gz")
	if err := Write(bad, nil); err != nil {
		t.Fatal(err)
	}
	// Valid but empty gz reads back as empty, no error.
	if got, err := Read(bad); err != nil || len(got) != 0 {
		t.Errorf("empty gz: %v %d", err, len(got))
	}
}

func TestReplayDetectsScenarios(t *testing.T) {
	opts := DefaultGenerateOptions()
	opts.Window = 25 * time.Minute
	opts.Scenarios = 1
	opts.Monitors.NoisePerHour = 0
	g, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Replay(g.Alerts, g.Topo, core.DefaultConfig(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	all := eng.AllIncidents()
	if len(all) == 0 {
		t.Fatal("replay produced no incidents")
	}
	sc := g.Scenarios[0]
	matched := false
	for _, in := range all {
		end := in.UpdateTime
		if sc.Matches(in.Root, in.Start, end) {
			matched = true
			break
		}
	}
	if !matched {
		t.Errorf("scenario %s (truth %v) not matched by any incident", sc.Name, sc.Truth)
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	eng, err := Replay(nil, nil, core.DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.AllIncidents()) != 0 {
		t.Error("empty replay produced incidents")
	}
}
