package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"skynet/internal/core"
	"skynet/internal/fanout"
)

// validateFrame checks a delivered frame for tearing: the SSE framing
// must be complete, the payload must decode as one well-formed JSON
// document, and the document must carry the keys its kind promises. A
// frame whose buffer was recycled or overwritten while the subscriber
// held it fails here (and trips the race detector besides).
func validateFrame(f *fanout.Frame) error {
	b := f.Bytes()
	if !bytes.HasSuffix(b, []byte("\n\n")) {
		return fmt.Errorf("frame seq %d: missing SSE terminator", f.Seq())
	}
	i := bytes.Index(b, []byte("data: "))
	if i < 0 {
		return fmt.Errorf("frame seq %d: no data line", f.Seq())
	}
	var doc map[string]any
	if err := json.Unmarshal(b[i+len("data: "):len(b)-2], &doc); err != nil {
		return fmt.Errorf("frame seq %d kind %v: torn payload: %w", f.Seq(), f.Kind(), err)
	}
	var want []string
	switch f.Kind() {
	case fanout.KindSnapshot:
		want = []string{"tick", "incidents"}
	case fanout.KindDelta:
		want = []string{"tick", "time"}
	case fanout.KindResync:
		want = []string{"skipped", "resume_seq"}
	}
	for _, k := range want {
		if _, ok := doc[k]; !ok {
			return fmt.Errorf("frame seq %d kind %v: payload missing %q", f.Seq(), f.Kind(), k)
		}
	}
	return nil
}

// consumeAll drains a subscriber until the hub closes or ctx ends,
// validating every frame and checking delivery never moves backwards.
func consumeAll(ctx context.Context, sub *fanout.Subscriber) (frames int, err error) {
	var lastSeq uint64
	for {
		fs, werr := sub.Wait(ctx)
		if werr != nil {
			// Eviction is a legal outcome for any consumer the scheduler
			// starves — the property is that it is announced, not that it
			// cannot happen.
			if errors.Is(werr, context.Canceled) || errors.Is(werr, fanout.ErrClosed) || errors.Is(werr, fanout.ErrEvicted) {
				return frames, nil
			}
			return frames, werr
		}
		for _, f := range fs {
			if verr := validateFrame(f); verr != nil {
				sub.ReleaseAll(fs)
				return frames, verr
			}
			if f.Seq() < lastSeq {
				sub.ReleaseAll(fs)
				return frames, fmt.Errorf("delivery moved backwards: seq %d after %d", f.Seq(), lastSeq)
			}
			lastSeq = f.Seq()
			frames++
		}
		sub.ReleaseAll(fs)
	}
}

// TestFanoutSlowConsumerProperty is the serving layer's slow-consumer
// property test, run against a real replay at workers {1, 2, 4, 8}
// (under -race this doubles as the hub's concurrency check against the
// parallel pipeline). Three consumer behaviors run concurrently with
// the publishing engine:
//
//   - a fast consumer that drains every frame and checks none is torn
//     and delivery never moves backwards;
//   - a stalling consumer that reads a little, stalls until the ring
//     has lapped it, and resumes — it must observe a drop-accounted
//     resync (first frame KindResync) or an eviction, never a gap that
//     goes unannounced;
//   - a dead consumer that never polls — the eviction scan must cut it
//     loose rather than let it pin hub memory.
//
// Throughout, the publisher must never block: the replay runs to
// completion on the main goroutine and publishes both per-tick frames
// regardless of what the consumers do.
func TestFanoutSlowConsumerProperty(t *testing.T) {
	gen := DefaultGenerateOptions()
	gen.Scenarios = 3
	gen.Window = 20 * time.Minute
	g, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	const ring = 32
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			hub := fanout.NewHub(fanout.Config{Ring: ring, EvictAfter: 2 * ring})
			defer hub.Close()

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var wg sync.WaitGroup

			// Fast consumer.
			fast, err := hub.Subscribe(fanout.SubscribeOptions{Cursor: -1})
			if err != nil {
				t.Fatal(err)
			}
			var fastFrames int
			var fastErr error
			wg.Add(1)
			go func() {
				defer wg.Done()
				fastFrames, fastErr = consumeAll(ctx, fast)
			}()

			// Stalling consumer: one batch, then sleep until the ring has
			// lapped its cursor (or the replay ends), then one final poll.
			stall, err := hub.Subscribe(fanout.SubscribeOptions{Cursor: -1})
			if err != nil {
				t.Fatal(err)
			}
			replayDone := make(chan struct{})
			var stallOutcome string
			var stallErr error
			var stallWg sync.WaitGroup
			stallWg.Add(1)
			go func() {
				defer stallWg.Done()
				fs, werr := stall.Wait(ctx)
				if werr != nil {
					stallErr = fmt.Errorf("first batch: %w", werr)
					return
				}
				cursor := fs[len(fs)-1].Seq()
				stall.ReleaseAll(fs)
				// Stall until lapped. The replay publishes 2 frames per
				// tick, so this resolves quickly; the replayDone fallback
				// keeps the test bounded either way.
				lapped := func() bool { return hub.StatsSnapshot().HeadSeq > cursor+2*ring }
				for !lapped() {
					select {
					case <-replayDone:
					case <-time.After(time.Millisecond):
						continue
					}
					break
				}
				fs, _, perr := stall.Poll()
				switch {
				case errors.Is(perr, fanout.ErrEvicted):
					stallOutcome = "evicted"
				case perr != nil:
					stallErr = fmt.Errorf("post-stall poll: %w", perr)
				case lapped():
					// The gap must be announced: resync notice first, and
					// everything delivered after it intact.
					if len(fs) == 0 || fs[0].Kind() != fanout.KindResync {
						stallErr = fmt.Errorf("lapped consumer resumed without a resync notice (%d frames)", len(fs))
						stall.ReleaseAll(fs)
						return
					}
					for _, f := range fs {
						if verr := validateFrame(f); verr != nil {
							stallErr = verr
							break
						}
					}
					stall.ReleaseAll(fs)
					stallOutcome = "resynced"
				default:
					// Replay ended before the ring lapped the cursor; a
					// plain in-ring delivery is correct here.
					for _, f := range fs {
						if verr := validateFrame(f); verr != nil {
							stallErr = verr
							break
						}
					}
					stall.ReleaseAll(fs)
					stallOutcome = "caught-up"
				}
			}()

			// Dead consumer: subscribes, never polls.
			dead, err := hub.Subscribe(fanout.SubscribeOptions{Cursor: -1})
			if err != nil {
				t.Fatal(err)
			}

			cfg := core.DefaultConfig()
			cfg.Workers = workers
			if _, err := ReplayWithOptions(g.Alerts, g.Topo, cfg, ReplayOptions{
				Fanout: hub,
			}); err != nil {
				t.Fatal(err)
			}
			close(replayDone)
			stallWg.Wait() // before Close: the final poll must see a live hub

			// One ring frame (the delta) per tick; the snapshot replaces a
			// side slot. Publishes below tick count would mean a blocked or
			// skipped publish.
			st := hub.StatsSnapshot()
			if st.Ticks == 0 || st.Published < st.Ticks {
				t.Fatalf("publisher starved: %d frames over %d ticks", st.Published, st.Ticks)
			}

			// The dead consumer lagged by far more than EvictAfter, so the
			// amortized eviction scan must have removed it by now.
			if _, _, perr := dead.Poll(); !errors.Is(perr, fanout.ErrEvicted) {
				t.Errorf("dead consumer not evicted after %d publishes: err=%v", st.Published, perr)
			}

			cancel()
			hub.Close()
			wg.Wait()

			if fastErr != nil {
				t.Errorf("fast consumer: %v", fastErr)
			}
			if fastFrames == 0 {
				t.Error("fast consumer received no frames")
			}
			if stallErr != nil {
				t.Errorf("stalling consumer: %v", stallErr)
			}
			if stallOutcome == "" {
				t.Error("stalling consumer reached no outcome")
			}
			if st.Evictions == 0 {
				t.Errorf("no evictions recorded despite a dead consumer (stats %+v)", st)
			}
			if stallOutcome == "resynced" && st.Resyncs == 0 {
				t.Errorf("consumer resynced but resyncs_total is 0 (stats %+v)", st)
			}
			// Resyncs skip frames, and every skipped frame must be
			// accounted in the per-kind drop counters.
			if st.Resyncs > 0 && st.DroppedTotal == 0 {
				t.Errorf("resyncs skipped frames but dropped_total is 0 (stats %+v)", st)
			}
		})
	}
}
