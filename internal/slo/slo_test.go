package slo

import (
	"strings"
	"testing"

	"skynet/internal/tsdb"
)

// harness binds a store and a single-rule engine; feed appends one sample
// and evaluates the tick, returning the rule's verdict.
type harness struct {
	db  *tsdb.DB
	eng *Engine
}

func newHarness(rule Rule) *harness {
	db := tsdb.New(tsdb.Config{})
	return &harness{db: db, eng: New(db, []Rule{rule})}
}

func (h *harness) feed(t *testing.T, tick uint64, v float64) Verdict {
	t.Helper()
	h.db.Append(h.eng.Rules()[0].Metric, tick, v)
	return h.eng.Evaluate(tick)[0]
}

// TestBurnGatingNeedsBothWindows pins the multi-window shape: a one-tick
// blip saturates the fast window but not the slow one, so the rule stays
// quiet; a sustained violation fires; recovery resolves once the fast
// window drains.
func TestBurnGatingNeedsBothWindows(t *testing.T) {
	h := newHarness(Rule{Name: "lat", Metric: "m", Target: 1,
		Budget: 0.5, FastWindow: 2, SlowWindow: 4, FastBurn: 1, SlowBurn: 1})

	for tick := uint64(0); tick < 4; tick++ {
		if v := h.feed(t, tick, 0); v.Firing {
			t.Fatalf("benign tick %d fired", tick)
		}
	}
	// One violating tick: fast burn 1/2/0.5 = 1 meets its threshold, but
	// the slow window (1/4/0.5 = 0.5) suppresses the blip.
	v := h.feed(t, 4, 2)
	if v.Firing {
		t.Fatal("single violating tick fired despite the slow window")
	}
	if v.FastBurn != 1 || v.SlowBurn != 0.5 {
		t.Fatalf("blip burns fast=%g slow=%g, want 1 and 0.5", v.FastBurn, v.SlowBurn)
	}
	v = h.feed(t, 5, 2)
	if !v.Firing || !v.Started {
		t.Fatalf("sustained violation did not fire: %+v", v)
	}
	if h.eng.EventCount() != 1 || h.eng.FiringCount() != 1 {
		t.Fatalf("events=%d firing=%d after the rising edge", h.eng.EventCount(), h.eng.FiringCount())
	}
	v = h.feed(t, 6, 2)
	if !v.Firing || v.Started || v.Stopped {
		t.Fatalf("steady firing produced an edge: %+v", v)
	}
	// First clean tick: the fast window still holds one violation and the
	// slow window three, so the rule keeps firing...
	if v = h.feed(t, 7, 0); !v.Firing {
		t.Fatal("rule resolved before the fast window drained")
	}
	// ...and resolves once the fast window is clean.
	v = h.feed(t, 8, 0)
	if v.Firing || !v.Stopped {
		t.Fatalf("drained fast window did not resolve: %+v", v)
	}

	events := h.eng.Events()
	if len(events) != 2 || !events[0].Firing || events[1].Firing {
		t.Fatalf("event log %+v, want one fire then one resolve", events)
	}
	if !strings.Contains(events[1].Detail, "slo lat resolved") {
		t.Fatalf("resolve detail %q", events[1].Detail)
	}
	st := h.eng.Status()[0]
	if st.Firing || st.Ticks != 9 {
		t.Fatalf("status %+v after 9 ticks", st)
	}
	if h.eng.FiringCount() != 0 {
		t.Fatal("firing gauge stuck after resolve")
	}
}

// TestDeltaRules pins counter-shaped rules: the first sample establishes
// the baseline without violating, level plateaus are clean, and only a
// positive per-tick increase violates.
func TestDeltaRules(t *testing.T) {
	h := newHarness(Rule{Name: "shed", Metric: "c", Delta: true, Target: 0,
		Budget: 0.5, FastWindow: 2, SlowWindow: 2, FastBurn: 1, SlowBurn: 1})

	if v := h.feed(t, 0, 100); v.Firing || v.FastBurn != 0 {
		t.Fatalf("first sample of a cumulative counter violated: %+v", v)
	}
	if v := h.feed(t, 1, 100); v.Firing {
		t.Fatal("flat counter violated")
	}
	v := h.feed(t, 2, 103)
	if !v.Firing || !v.Started {
		t.Fatalf("counter increase did not fire: %+v", v)
	}
	if v = h.feed(t, 3, 103); !v.Firing {
		t.Fatal("resolved while the violation was still inside the windows")
	}
	v = h.feed(t, 4, 103)
	if v.Firing || !v.Stopped {
		t.Fatalf("flat counter did not resolve: %+v", v)
	}
}

// TestBelowRules pins inverted predicates (conservation residuals): only
// values below the target violate.
func TestBelowRules(t *testing.T) {
	h := newHarness(Rule{Name: "resid", Metric: "r", Below: true, Target: 0,
		Budget: 1, FastWindow: 1, SlowWindow: 1, FastBurn: 1, SlowBurn: 1})

	if v := h.feed(t, 0, 0); v.Firing {
		t.Fatal("value at target violated a Below rule")
	}
	if v := h.feed(t, 1, 5); v.Firing {
		t.Fatal("value above target violated a Below rule")
	}
	v := h.feed(t, 2, -0.5)
	if !v.Firing || !v.Started {
		t.Fatalf("negative residual did not fire: %+v", v)
	}
	if v = h.feed(t, 3, 0); v.Firing || !v.Stopped {
		t.Fatalf("recovered residual did not resolve: %+v", v)
	}
}

// TestStartupPadding pins the cold-start behavior: windows are padded
// with non-violating samples, so even a series violating from tick zero
// must accumulate real slow-window burn before the rule fires.
func TestStartupPadding(t *testing.T) {
	h := newHarness(Rule{Name: "lat", Metric: "m", Target: 0.1})
	// Defaults: budget 1%, windows 12/96, thresholds 14.4/6. With every
	// tick violating, slow burn (n+1)/96/0.01 crosses 6 at the sixth tick.
	for tick := uint64(0); tick < 5; tick++ {
		if v := h.feed(t, tick, 1); v.Firing {
			t.Fatalf("fired at startup tick %d before the slow window had evidence", tick)
		}
	}
	if v := h.feed(t, 5, 1); !v.Firing || !v.Started {
		t.Fatalf("sustained violation never fired after padding drained: %+v", v)
	}
}

// TestMissingSeriesIsBenign pins the absent-metric case: a rule over a
// series the store never saw observes ticks but never violates.
func TestMissingSeriesIsBenign(t *testing.T) {
	db := tsdb.New(tsdb.Config{})
	eng := New(db, []Rule{{Name: "ghost", Metric: "absent", Target: 0,
		FastWindow: 1, SlowWindow: 1, FastBurn: 1, SlowBurn: 1}})
	for tick := uint64(0); tick < 10; tick++ {
		if v := eng.Evaluate(tick)[0]; v.Firing {
			t.Fatalf("rule over a missing series fired at tick %d", tick)
		}
	}
	st := eng.Status()[0]
	if st.Ticks != 10 || st.Value != 0 {
		t.Fatalf("missing-series status %+v", st)
	}
}

// TestNotifyAndDetail pins the event plumbing: SetNotify sees every edge
// in order and LastDetail tracks the newest one.
func TestNotifyAndDetail(t *testing.T) {
	h := newHarness(Rule{Name: "lat", Metric: "m", Target: 1,
		Budget: 1, FastWindow: 1, SlowWindow: 1, FastBurn: 1, SlowBurn: 1})
	var got []Event
	h.eng.SetNotify(func(ev Event) { got = append(got, ev) })

	h.feed(t, 0, 5) // fire
	h.feed(t, 1, 0) // resolve
	if len(got) != 2 || !got[0].Firing || got[1].Firing {
		t.Fatalf("notify saw %+v", got)
	}
	if h.eng.LastDetail() != got[1].Detail {
		t.Fatalf("LastDetail %q, want %q", h.eng.LastDetail(), got[1].Detail)
	}
}

// TestRuleValidation pins constructor hygiene: unnamed or metric-less
// rules are dropped, and a slow window shorter than the fast one is
// raised to it.
func TestRuleValidation(t *testing.T) {
	db := tsdb.New(tsdb.Config{})
	if n := len(New(db, []Rule{{Metric: "m"}, {Name: "x"}}).Rules()); n != 0 {
		t.Fatalf("invalid rules survived: %d", n)
	}
	r := New(db, []Rule{{Name: "a", Metric: "m", FastWindow: 8, SlowWindow: 2}}).Rules()[0]
	if r.SlowWindow != 8 {
		t.Fatalf("slow window %d, want raised to 8", r.SlowWindow)
	}
	if r.Budget != DefaultBudget || r.FastBurn != DefaultFastBurn || r.SlowBurn != DefaultSlowBurn {
		t.Fatalf("defaults not applied: %+v", r)
	}
}
