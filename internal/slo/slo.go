// Package slo evaluates multi-window burn-rate rules over the telemetry
// history store — the Google-SRE alerting shape, applied to SkyNet
// itself. Each rule names a stored series, a violation predicate, and an
// error budget; every engine tick the rule's violating-tick fraction is
// measured over a fast and a slow window, normalized by the budget into
// a burn rate, and the rule fires only when BOTH windows exceed their
// thresholds — the fast window for reaction time, the slow one to
// suppress one-tick blips.
//
// This replaces the flight recorder's single-window tick-p99 self-SLO:
// the recorder now consumes burn events (its slo_burn trigger), and the
// core engine's self-monitoring loop converts them into synthetic
// meta/skynetd alerts injected through SkyNet's own ingest path.
//
// Like the store it reads, the engine is deterministic: burn state is a
// pure function of the tick-indexed series, so replay tests compare the
// exact event sequence across worker counts.
package slo

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skynet/internal/telemetry"
	"skynet/internal/tsdb"
)

// Defaults for Rule fields left zero.
const (
	DefaultBudget     = 0.01 // 1% of ticks may violate
	DefaultFastWindow = 12
	DefaultSlowWindow = 96
	DefaultFastBurn   = 14.4 // SRE canon for the fast page window
	DefaultSlowBurn   = 6
)

// DefaultGCPauseTarget is the gc_pause rule's objective: the worst GC
// stop-the-world pause between two ticks. Go's collector targets
// sub-millisecond pauses, so sustained 50ms pauses mean severe heap
// pressure — the regime where tick latency becomes GC-bound.
const DefaultGCPauseTarget = 50 * time.Millisecond

// Rule is one burn-rate alerting rule over a stored series.
type Rule struct {
	// Name identifies the rule; it becomes the third segment of the
	// meta/skynetd self-alert location, so it must avoid the hierarchy
	// separator.
	Name string `json:"name"`
	// Metric is the series read from the store each tick.
	Metric string `json:"metric"`
	// Help documents the rule on /api/slo.
	Help string `json:"help,omitempty"`
	// Delta evaluates the per-tick increase of the series instead of its
	// level — the shape for cumulative counters (shed, drops).
	Delta bool `json:"delta,omitempty"`
	// Below inverts the predicate: a tick violates when the value drops
	// below Target (conservation residuals) instead of exceeding it.
	Below bool `json:"below,omitempty"`
	// Target is the per-tick objective the value is compared against.
	Target float64 `json:"target"`
	// Budget is the tolerated violating-tick fraction (default 1%).
	Budget float64 `json:"budget"`
	// FastWindow and SlowWindow are the two lookback windows, in ticks.
	// Until a window has seen that many ticks it is padded with
	// non-violating samples, so rules never fire spuriously at startup.
	FastWindow int `json:"fast_window"`
	SlowWindow int `json:"slow_window"`
	// FastBurn and SlowBurn are the burn-rate thresholds; the rule fires
	// while both windows are at or above theirs.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
}

func (r Rule) withDefaults() Rule {
	if r.Budget <= 0 {
		r.Budget = DefaultBudget
	}
	if r.FastWindow <= 0 {
		r.FastWindow = DefaultFastWindow
	}
	if r.SlowWindow <= 0 {
		r.SlowWindow = DefaultSlowWindow
	}
	if r.SlowWindow < r.FastWindow {
		r.SlowWindow = r.FastWindow
	}
	if r.FastBurn <= 0 {
		r.FastBurn = DefaultFastBurn
	}
	if r.SlowBurn <= 0 {
		r.SlowBurn = DefaultSlowBurn
	}
	return r
}

// DefaultRules is the production self-SLO set. tickP99 is the per-tick
// latency objective (the old -slo-tick-p99 flag's meaning, now the
// target of a burn-rate rule rather than a single-window trigger).
func DefaultRules(tickP99 time.Duration) []Rule {
	return []Rule{
		{
			Name:   "tick-latency",
			Metric: tsdb.MetricTickDuration,
			Help:   "Engine tick wall latency must stay under the objective.",
			Target: tickP99.Seconds(),
		},
		{
			Name:   "ingest-shed",
			Metric: "skynet_ingest_rejected_queue_full_total",
			Help:   "Ingest queues must not shed alerts.",
			Delta:  true,
			Target: 0,
		},
		{
			Name:   "journal-drop",
			Metric: "skynet_journal_events_evicted_total",
			Help:   "The lifecycle journal must not evict unread events.",
			Delta:  true,
			Target: 0,
		},
		{
			// The runtime sampler publishes the worst GC pause between
			// ticks; sustained pauses past the objective mean the
			// pipeline's latency budget is being spent in the collector,
			// not the alert stream. The series is host-dependent and
			// filtered out of deterministic replays, where a missing
			// series never violates — replay burn-event logs are
			// unaffected by this rule.
			Name:   "gc_pause",
			Metric: "skynet_runtime_gc_pause_max_seconds",
			Help:   "Worst GC pause between ticks must stay under the runtime objective.",
			Target: DefaultGCPauseTarget.Seconds(),
		},
		{
			// Conservation must never go negative; tight windows make a
			// single violating tick fire immediately.
			Name:       "lineage-conservation",
			Metric:     "skynet_lineage_in_flight",
			Help:       "Provenance conservation residual must stay non-negative.",
			Below:      true,
			Target:     0,
			Budget:     0.005,
			FastWindow: 4,
			SlowWindow: 32,
			FastBurn:   50,
			SlowBurn:   6,
		},
	}
}

// ruleState is one rule's sliding-window memory. Owned by the engine
// goroutine; the published copy lives in Engine.status.
type ruleState struct {
	rule     Rule
	ring     []uint8 // violation bits over the slow window
	n        uint64  // ticks observed
	fastSum  int
	slowSum  int
	prev     float64 // previous raw value (Delta rules)
	hasPrev  bool
	firing   bool
	lastVal  float64
	lastFast float64
	lastSlow float64
	tail     []float64 // scratch for store reads
}

// RuleStatus is the /api/slo view of one rule.
type RuleStatus struct {
	Rule     Rule    `json:"rule"`
	Value    float64 `json:"value"` // last evaluated value (delta for Delta rules)
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	Firing   bool    `json:"firing"`
	// Ticks is how many ticks the rule has observed.
	Ticks uint64 `json:"ticks"`
}

// Event is one burn-state edge (fire or resolve).
type Event struct {
	Tick     uint64  `json:"tick"`
	Rule     string  `json:"rule"`
	Firing   bool    `json:"firing"`
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	Detail   string  `json:"detail"`
}

// Verdict is the per-tick evaluation result handed to the self-monitor.
type Verdict struct {
	Rule     *Rule
	Firing   bool
	Started  bool // rising edge this tick
	Stopped  bool // falling edge this tick
	FastBurn float64
	SlowBurn float64
}

// maxEvents bounds the in-memory event log.
const maxEvents = 1024

// Engine evaluates a rule set once per tick. Evaluate runs on the core
// engine's goroutine; Status/Events serve HTTP readers through a mutex-
// guarded published copy.
type Engine struct {
	db    *tsdb.DB
	rules []*ruleState
	vbuf  []Verdict

	mu     sync.Mutex
	status []RuleStatus
	events []Event

	eventsTotal atomic.Int64
	firingNow   atomic.Int64
	lastDetail  atomic.Value // string

	notify func(Event)
}

// New builds an engine over the store. Rules with empty Name or Metric
// are dropped.
func New(db *tsdb.DB, rules []Rule) *Engine {
	e := &Engine{db: db}
	for _, r := range rules {
		if r.Name == "" || r.Metric == "" {
			continue
		}
		r = r.withDefaults()
		e.rules = append(e.rules, &ruleState{rule: r, ring: make([]uint8, r.SlowWindow)})
	}
	e.status = make([]RuleStatus, len(e.rules))
	for i, rs := range e.rules {
		e.status[i] = RuleStatus{Rule: rs.rule}
	}
	e.vbuf = make([]Verdict, 0, len(e.rules))
	e.lastDetail.Store("")
	return e
}

// Rules returns the resolved rule set, in evaluation order.
func (e *Engine) Rules() []Rule {
	out := make([]Rule, len(e.rules))
	for i, rs := range e.rules {
		out[i] = rs.rule
	}
	return out
}

// SetNotify installs a burn-event callback, invoked from Evaluate on the
// engine goroutine.
func (e *Engine) SetNotify(fn func(Event)) { e.notify = fn }

// Evaluate advances every rule to the given tick and returns the
// verdicts. The returned slice is reused across calls; callers must not
// retain it.
func (e *Engine) Evaluate(tick uint64) []Verdict {
	verdicts := e.vbuf[:0]
	var pending []Event
	for _, rs := range e.rules {
		v := e.evalRule(rs)
		verdicts = append(verdicts, v)
		if v.Started || v.Stopped {
			verb := "resolved"
			if v.Firing {
				verb = "firing"
			}
			pending = append(pending, Event{
				Tick:     tick,
				Rule:     rs.rule.Name,
				Firing:   v.Firing,
				FastBurn: v.FastBurn,
				SlowBurn: v.SlowBurn,
				Detail: fmt.Sprintf("slo %s %s: fast burn %.2f (>=%.2f over %d ticks), slow burn %.2f (>=%.2f over %d ticks)",
					rs.rule.Name, verb, v.FastBurn, rs.rule.FastBurn, rs.rule.FastWindow,
					v.SlowBurn, rs.rule.SlowBurn, rs.rule.SlowWindow),
			})
		}
	}
	e.vbuf = verdicts
	e.publish(pending)
	return verdicts
}

func (e *Engine) evalRule(rs *ruleState) Verdict {
	r := &rs.rule
	rs.tail, _ = e.db.Tail(r.Metric, 1, rs.tail[:0])
	ok := len(rs.tail) > 0
	var raw, val float64
	if ok {
		raw = rs.tail[0]
		val = raw
		if r.Delta {
			if rs.hasPrev {
				val = raw - rs.prev
			} else {
				val = 0
			}
		}
		rs.prev = raw
		rs.hasPrev = true
	}
	violates := uint8(0)
	if ok {
		if r.Below {
			if val < r.Target {
				violates = 1
			}
		} else if val > r.Target {
			violates = 1
		}
	}
	// Slide the slow-window ring. The slot being overwritten holds the
	// bit departing the slow window; the bit departing the fast window
	// sits FastWindow slots back. Both are read before the overwrite, so
	// the arithmetic is exact even when the windows coincide.
	w := len(rs.ring)
	idx := int(rs.n % uint64(w))
	fastIdx := (idx + w - r.FastWindow) % w
	rs.slowSum += int(violates) - int(rs.ring[idx])
	rs.fastSum += int(violates) - int(rs.ring[fastIdx])
	rs.ring[idx] = violates
	rs.n++

	fastBurn := float64(rs.fastSum) / float64(r.FastWindow) / r.Budget
	slowBurn := float64(rs.slowSum) / float64(r.SlowWindow) / r.Budget
	firing := fastBurn >= r.FastBurn && slowBurn >= r.SlowBurn
	v := Verdict{
		Rule:     r,
		Firing:   firing,
		Started:  firing && !rs.firing,
		Stopped:  !firing && rs.firing,
		FastBurn: fastBurn,
		SlowBurn: slowBurn,
	}
	rs.firing = firing
	rs.lastVal = val
	rs.lastFast, rs.lastSlow = fastBurn, slowBurn
	return v
}

// publish copies the per-rule state behind the mutex and emits events.
func (e *Engine) publish(pending []Event) {
	firing := int64(0)
	e.mu.Lock()
	for i, rs := range e.rules {
		e.status[i] = RuleStatus{
			Rule:     rs.rule,
			Value:    rs.lastVal,
			FastBurn: rs.lastFast,
			SlowBurn: rs.lastSlow,
			Firing:   rs.firing,
			Ticks:    rs.n,
		}
		if rs.firing {
			firing++
		}
	}
	for _, ev := range pending {
		e.events = append(e.events, ev)
		if len(e.events) > maxEvents {
			e.events = e.events[len(e.events)-maxEvents:]
		}
	}
	e.mu.Unlock()
	e.firingNow.Store(firing)
	for _, ev := range pending {
		e.eventsTotal.Add(1)
		e.lastDetail.Store(ev.Detail)
		if e.notify != nil {
			e.notify(ev)
		}
	}
}

// Status returns the published per-rule state, rule order preserved.
func (e *Engine) Status() []RuleStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]RuleStatus, len(e.status))
	copy(out, e.status)
	return out
}

// Events returns a copy of the burn-event log (bounded to the newest
// 1024 events).
func (e *Engine) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Event, len(e.events))
	copy(out, e.events)
	return out
}

// EventCount reports burn-state edges since start — the flight
// recorder's slo_burn trigger source. Lock-free.
func (e *Engine) EventCount() int64 { return e.eventsTotal.Load() }

// FiringCount reports how many rules are currently firing. Lock-free.
func (e *Engine) FiringCount() int64 { return e.firingNow.Load() }

// LastDetail describes the most recent burn event. Lock-free.
func (e *Engine) LastDetail() string {
	s, _ := e.lastDetail.Load().(string)
	return s
}

// RegisterMetrics publishes burn-state gauges. Callbacks read atomics
// only, so the history sampler may sample them while holding the store
// lock.
func (e *Engine) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("skynet_slo_burn_events_total",
		"SLO burn-state edges (fire + resolve) since start.",
		func() float64 { return float64(e.eventsTotal.Load()) })
	reg.GaugeFunc("skynet_slo_rules_firing",
		"SLO rules currently in the firing state.",
		func() float64 { return float64(e.firingNow.Load()) })
}
