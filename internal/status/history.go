package status

import (
	"net/http"
	"strconv"

	"skynet/internal/slo"
	"skynet/internal/tsdb"
)

// EventTypeSLO carries a slo.Event — a burn-rate rule starting or
// stopping to fire.
const EventTypeSLO = "slo"

// WithHistory mounts GET /api/query serving the tick-indexed telemetry
// history store. The store is internally synchronized; the handler does
// not take the engine lock.
//
//	GET /api/query?metric=NAME[&from=T][&to=T][&step=N]
//
// from/to bound the tick window (to=0 means "latest"); step selects the
// resolution — 1 reads raw samples, ≥10 and ≥100 read the downsample
// tiers re-bucketed to the requested step.
func (s *Snapshotter) WithHistory(db *tsdb.DB) *Snapshotter {
	s.history = db
	return s
}

// WithSLO mounts GET /api/slo serving the burn-rate engine's per-rule
// status and recent burn events. Status reads copy under the engine's
// own lock; the handler does not take the engine lock.
func (s *Snapshotter) WithSLO(eng *slo.Engine) *Snapshotter {
	s.slo = eng
	return s
}

func (s *Snapshotter) queryHandler(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		http.Error(w, "missing metric parameter", http.StatusBadRequest)
		return
	}
	parse := func(key string) (uint64, bool) {
		raw := q.Get(key)
		if raw == "" {
			return 0, true
		}
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, "bad "+key+" parameter", http.StatusBadRequest)
			return 0, false
		}
		return v, true
	}
	from, ok := parse("from")
	if !ok {
		return
	}
	to, ok := parse("to")
	if !ok {
		return
	}
	step, ok := parse("step")
	if !ok {
		return
	}
	res, err := s.history.Query(metric, from, to, step)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, res)
}

// sloView is the /api/slo JSON shape.
type sloView struct {
	// Tick is the history store's latest sampled tick — the evaluation
	// horizon of every rule status below.
	Tick uint64 `json:"tick"`
	// Firing counts rules currently burning.
	Firing int64 `json:"firing"`
	// Rules is the per-rule burn status.
	Rules []slo.RuleStatus `json:"rules"`
	// Events is the recent burn-event ring, oldest first.
	Events []slo.Event `json:"events"`
}

func (s *Snapshotter) sloHandler(w http.ResponseWriter, r *http.Request) {
	view := sloView{
		Firing: s.slo.FiringCount(),
		Rules:  s.slo.Status(),
		Events: s.slo.Events(),
	}
	if s.history != nil {
		view.Tick = s.history.LastTick()
	}
	writeJSON(w, view)
}
