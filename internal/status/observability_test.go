package status

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/core"
	"skynet/internal/hierarchy"
	"skynet/internal/ingest"
	"skynet/internal/preprocess"
	"skynet/internal/telemetry"
)

// instrumentedEngine builds an engine with telemetry + journal attached
// and one incident generated.
func instrumentedEngine(t *testing.T) (*core.Engine, *sync.Mutex, *telemetry.Registry, *telemetry.Journal) {
	t.Helper()
	classifier, err := preprocess.BootstrapClassifier()
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(core.DefaultConfig(), nil, classifier, nil, nil)
	reg := telemetry.New()
	j := telemetry.NewJournal(0)
	eng.EnableTelemetry(reg, j)
	dev := hierarchy.MustNew("RG01", "CT01", "LS01", "ST01", "CL01", "dev-a")
	for i, typ := range []string{alert.TypePacketLoss, alert.TypeEndToEndICMP} {
		eng.Ingest(alert.Alert{
			Source: alert.SourcePing, Type: typ, Class: alert.ClassFailure,
			Time: epoch.Add(time.Duration(i) * time.Second), End: epoch.Add(time.Duration(i) * time.Second),
			Location: dev, Value: 0.4, Count: 1,
		})
	}
	eng.Tick(epoch.Add(30 * time.Second))
	if len(eng.Active()) == 0 {
		t.Fatal("setup: no incident")
	}
	return eng, &sync.Mutex{}, reg, j
}

func TestMetricsEndpoint(t *testing.T) {
	eng, mu, reg, j := instrumentedEngine(t)
	h := NewSnapshotter(mu, eng, nil).WithTelemetry(reg).WithJournal(j).Handler()
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"# TYPE skynet_raw_alerts_total counter",
		"skynet_raw_alerts_total 2",
		"# TYPE skynet_tick_seconds histogram",
		`skynet_tick_seconds_bucket{le="+Inf"} 1`,
		"skynet_tick_seconds_count 1",
		"# TYPE skynet_active_incidents gauge",
		"skynet_active_incidents 1",
		"# TYPE skynet_stage_locate_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Every line must be a comment or "name[{labels}] value" — the
	// Prometheus text contract.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestMetricsAbsentWithoutRegistry(t *testing.T) {
	eng, mu := loadedEngine(t)
	h := NewSnapshotter(mu, eng, nil).Handler()
	if code, _ := get(t, h, "/metrics"); code != http.StatusNotFound {
		t.Errorf("metrics without registry: %d, want 404", code)
	}
	if code, _ := get(t, h, "/api/journal"); code != http.StatusNotFound {
		t.Errorf("journal without journal: %d, want 404", code)
	}
	if code, _ := get(t, h, "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof without flag: %d, want 404", code)
	}
}

func TestJournalEndpoint(t *testing.T) {
	eng, mu, reg, j := instrumentedEngine(t)
	h := NewSnapshotter(mu, eng, nil).WithTelemetry(reg).WithJournal(j).Handler()
	code, body := get(t, h, "/api/journal")
	if code != http.StatusOK {
		t.Fatalf("journal: %d", code)
	}
	var events []telemetry.Event
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0].Type != telemetry.EventCreated {
		t.Fatalf("journal = %+v, want a created event first", events)
	}
	if events[0].Alerts != 2 {
		t.Errorf("created event alerts = %d, want 2", events[0].Alerts)
	}
	// since= filtering.
	last := events[len(events)-1].Seq
	code, body = get(t, h, "/api/journal?since="+itoa(int(last)))
	if code != http.StatusOK {
		t.Fatalf("journal since: %d", code)
	}
	var newer []telemetry.Event
	if err := json.Unmarshal([]byte(body), &newer); err != nil {
		t.Fatal(err)
	}
	if len(newer) != 0 {
		t.Errorf("since=%d returned %d events, want 0", last, len(newer))
	}
	if code, _ := get(t, h, "/api/journal?since=nope"); code != http.StatusBadRequest {
		t.Errorf("bad since: %d, want 400", code)
	}
}

func TestPprofEndpoint(t *testing.T) {
	eng, mu, reg, _ := instrumentedEngine(t)
	h := NewSnapshotter(mu, eng, nil).WithTelemetry(reg).WithPprof(true).Handler()
	code, body := get(t, h, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: %d", code)
	}
	if code, _ := get(t, h, "/debug/pprof/symbol"); code != http.StatusOK {
		t.Errorf("pprof symbol: %d", code)
	}
}

// TestConcurrentScrapeWhileIngesting mirrors the skynetd locking pattern:
// one goroutine owns engine mutation under the shared mutex while others
// hammer every HTTP endpoint. Run with -race; the assertions are
// secondary to the race detector's verdict.
func TestConcurrentScrapeWhileIngesting(t *testing.T) {
	eng, mu, reg, j := instrumentedEngine(t)
	srv, err := ingest.Listen(ingest.Config{TCPAddr: "127.0.0.1:0", UDPAddr: "127.0.0.1:0"},
		func(a alert.Alert) {
			mu.Lock()
			eng.Ingest(a)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterMetrics(reg)
	j.RegisterMetrics(reg)
	h := NewSnapshotter(mu, eng, srv).WithTelemetry(reg).WithJournal(j).WithPprof(true).Handler()

	done := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: ingest + tick under the lock, like skynetd's main loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		dev := hierarchy.MustNew("RG01", "CT01", "LS01", "ST01", "CL01", "dev-b")
		now := epoch.Add(time.Minute)
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			mu.Lock()
			eng.Ingest(alert.Alert{
				Source: alert.SourcePing, Type: alert.TypePacketLoss,
				Class: alert.ClassFailure, Time: now, End: now,
				Location: dev, Value: 0.4, Count: 1,
			})
			if i%10 == 0 {
				now = now.Add(10 * time.Second)
				eng.Tick(now)
			}
			mu.Unlock()
		}
	}()

	// UDP traffic through the real listener exercises the ingest
	// counters concurrently with the scrapes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := ingest.DialUDP(srv.UDPAddr().String())
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		a := alert.Alert{
			Source: alert.SourcePing, Type: alert.TypePacketLoss,
			Class: alert.ClassFailure, Time: epoch, End: epoch,
			Location: hierarchy.MustNew("RG01", "CT01", "LS01", "ST01", "CL01", "dev-c"),
			Value:    0.3, Count: 1,
		}
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = c.Send(&a)
		}
	}()

	// Readers: hammer every endpoint.
	paths := []string{"/metrics", "/api/journal", "/api/stats", "/api/incidents", "/healthz", "/"}
	for _, p := range paths {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				code, _ := get(t, h, path)
				if code != http.StatusOK {
					t.Errorf("%s: %d", path, code)
					return
				}
			}
		}(p)
	}

	time.Sleep(500 * time.Millisecond)
	close(done)
	wg.Wait()

	// The funnel numbers on /metrics and /api/stats come from the same
	// structs; after quiescing they must agree.
	mu.Lock()
	raw := eng.RawIngested()
	mu.Unlock()
	var found float64
	for _, m := range reg.Snapshot() {
		if m.Name == "skynet_raw_alerts_total" {
			found = m.Value
		}
	}
	if int(found) != raw {
		t.Errorf("raw counter %v != engine %d", found, raw)
	}
}
