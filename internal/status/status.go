// Package status serves SkyNet's operational state over HTTP: health,
// ingest/pipeline counters, and the current incident list as JSON — the
// machine-readable face of the visualization frontend (§7.1) and the
// integration point dashboards poll.
//
// Endpoints:
//
//	GET /healthz            liveness, plain "ok"
//	GET /api/stats          ingest + preprocess counters
//	GET /api/incidents      all incidents, active first, severity-ranked
//	GET /api/incidents/{id} one incident incl. its Figure 6 report and
//	                        LLM-ready context bundle
//	GET /api/incidents/{id}/explain
//	                        provenance document: trigger rule, evidence
//	                        streams, score breakdown, lineage samples
//	                        (WithProvenance)
//	GET /api/journal        incident lifecycle events (WithJournal);
//	                        ?since=SEQ returns only newer events
//	GET /api/buildinfo      binary version, go version, resolved flags
//	                        (WithBuildInfo)
//	GET /api/health         flight-recorder self-SLO verdict; 200 while
//	                        healthy, 503 while degraded (WithFlight)
//	GET /api/trace          recent tick span trees as JSON; ?last=N
//	                        bounds the count (WithTracer)
//	GET /api/events         SSE stream of incident lifecycle transitions,
//	                        flight-recorder anomalies, and flood-episode
//	                        transitions (WithEvents)
//	GET /api/floods         detected flood episodes, summary view
//	                        (WithFlood)
//	GET /api/floods/{id}/report
//	                        one episode's full postmortem report: volume
//	                        by source/type, top locations, incident
//	                        timeline, severity trajectory, perf
//	                        (WithFlood)
//	GET /api/query          tick-indexed telemetry history:
//	                        ?metric=NAME[&from=T][&to=T][&step=N]
//	                        (WithHistory)
//	GET /api/slo            burn-rate rule status and recent burn events
//	                        (WithSLO)
//	GET /api/profile        continuous-profiler window list + per-stage
//	                        CPU table (WithProfiler)
//	GET /metrics            Prometheus text exposition (WithTelemetry)
//	GET /debug/pprof/...    runtime profiles (WithPprof)
package status

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"skynet/internal/core"
	"skynet/internal/evaluator"
	"skynet/internal/fanout"
	"skynet/internal/flight"
	"skynet/internal/flood"
	"skynet/internal/incident"
	"skynet/internal/ingest"
	"skynet/internal/llmctx"
	"skynet/internal/prof"
	"skynet/internal/provenance"
	"skynet/internal/slo"
	"skynet/internal/span"
	"skynet/internal/telemetry"
	"skynet/internal/topology"
	"skynet/internal/tsdb"
	"skynet/internal/viz"
)

// Snapshotter provides serialized access to the engine. The ingest
// dispatch loop owns the engine; the HTTP handlers must go through the
// same lock.
type Snapshotter struct {
	mu       *sync.Mutex
	engine   *core.Engine
	ingest   *ingest.Server       // optional
	topo     *topology.Topology   // optional, enables graph rendering
	reg      *telemetry.Registry  // optional, enables GET /metrics
	journal  *telemetry.Journal   // optional, enables GET /api/journal
	prov     *provenance.Recorder // optional, enables .../explain
	build    *BuildInfo           // optional, enables GET /api/buildinfo
	pprof    bool                 // mounts /debug/pprof
	flight   *flight.Recorder     // optional, enables GET /api/health
	tracer   *span.Tracer         // optional, enables GET /api/trace
	events   *fanout.Hub          // optional, enables GET /api/events + /api/fanout
	flood    *flood.Recorder      // optional, enables GET /api/floods
	history  *tsdb.DB             // optional, enables GET /api/query
	slo      *slo.Engine          // optional, enables GET /api/slo
	profiler *prof.Collector      // optional, enables GET /api/profile
}

// BuildInfo is the /api/buildinfo JSON shape: enough to identify a fleet
// member's binary and runtime configuration at a glance.
type BuildInfo struct {
	Version   string            `json:"version"`
	GoVersion string            `json:"go_version"`
	OS        string            `json:"os"`
	Arch      string            `json:"arch"`
	Workers   int               `json:"workers,omitempty"`
	Flags     map[string]string `json:"flags,omitempty"`
}

// WithTopology enables the per-incident voting-graph endpoint
// (/api/incidents/{id}/graph.svg).
func (s *Snapshotter) WithTopology(topo *topology.Topology) *Snapshotter {
	s.topo = topo
	return s
}

// WithTelemetry mounts GET /metrics serving the registry in Prometheus
// text exposition format. Metric reads are atomic snapshots; the handler
// does not take the engine lock.
func (s *Snapshotter) WithTelemetry(reg *telemetry.Registry) *Snapshotter {
	s.reg = reg
	return s
}

// WithJournal mounts GET /api/journal serving the incident lifecycle
// event log. The journal is internally synchronized; the handler does not
// take the engine lock.
func (s *Snapshotter) WithJournal(j *telemetry.Journal) *Snapshotter {
	s.journal = j
	return s
}

// WithProvenance mounts GET /api/incidents/{id}/explain serving the
// lineage recorder's provenance document. Incident state is read under
// the engine lock, like the other incident endpoints.
func (s *Snapshotter) WithProvenance(rec *provenance.Recorder) *Snapshotter {
	s.prov = rec
	return s
}

// WithBuildInfo mounts GET /api/buildinfo.
func (s *Snapshotter) WithBuildInfo(bi BuildInfo) *Snapshotter {
	s.build = &bi
	return s
}

// WithPprof mounts net/http/pprof under /debug/pprof/ — gated behind a
// flag because profiles expose internals and cost CPU while sampled.
func (s *Snapshotter) WithPprof(enable bool) *Snapshotter {
	s.pprof = enable
	return s
}

// NewSnapshotter wraps an engine (and optionally its ingest server) with
// the mutex that serializes engine access.
func NewSnapshotter(mu *sync.Mutex, eng *core.Engine, srv *ingest.Server) *Snapshotter {
	return &Snapshotter{mu: mu, engine: eng, ingest: srv}
}

// IncidentSummary is the list-view JSON shape.
type IncidentSummary struct {
	ID         int       `json:"id"`
	Root       string    `json:"root"`
	Zoomed     string    `json:"zoomed,omitempty"`
	Severity   float64   `json:"severity"`
	Active     bool      `json:"active"`
	Start      time.Time `json:"start"`
	UpdateTime time.Time `json:"update_time"`
	End        time.Time `json:"end,omitempty"`
	AlertCount int       `json:"alert_count"`
	Locations  int       `json:"locations"`
}

// IncidentDetail extends the summary with the operator report and the
// LLM-ready context (§9).
type IncidentDetail struct {
	IncidentSummary
	Report     string `json:"report"`
	LLMContext string `json:"llm_context"`
}

// StatsView is the /api/stats JSON shape. The ingest fields are copied
// from ingest.Stats — the same struct RegisterMetrics exposes on /metrics
// — so the two surfaces always report identical numbers.
type StatsView struct {
	RawIngested     int `json:"raw_ingested"`
	Structured      int `json:"structured"`
	ActiveIncidents int `json:"active_incidents"`
	ClosedIncidents int `json:"closed_incidents"`

	TCPConnections int `json:"tcp_connections,omitempty"`
	AlertsAccepted int `json:"alerts_accepted,omitempty"`
	AlertsRejected int `json:"alerts_rejected,omitempty"`
	QueueHighWater int `json:"queue_high_water,omitempty"`

	// Per-protocol reject reasons, summing to alerts_rejected.
	RejectedTCPDecode  int `json:"rejected_tcp_decode,omitempty"`
	RejectedTCPInvalid int `json:"rejected_tcp_invalid,omitempty"`
	RejectedUDPParse   int `json:"rejected_udp_parse,omitempty"`
	RejectedUDPInvalid int `json:"rejected_udp_invalid,omitempty"`
	RejectedQueueFull  int `json:"rejected_queue_full,omitempty"`
}

// Summarize builds the list-view JSON shape for one incident — shared
// with the flight recorder's dump snapshots so both surfaces agree.
func Summarize(in *incident.Incident) IncidentSummary { return summarize(in) }

func summarize(in *incident.Incident) IncidentSummary {
	return IncidentSummary{
		ID:         in.ID,
		Root:       in.Root.String(),
		Zoomed:     in.Zoomed.String(),
		Severity:   in.Severity,
		Active:     in.Active(),
		Start:      in.Start,
		UpdateTime: in.UpdateTime,
		End:        in.End,
		AlertCount: in.AlertCount(),
		Locations:  len(in.Locations()),
	}
}

// Handler builds the HTTP handler.
func (s *Snapshotter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.indexHandler)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/api/stats", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		view := StatsView{
			RawIngested:     s.engine.RawIngested(),
			Structured:      s.engine.PreprocessStats().Out,
			ActiveIncidents: len(s.engine.Active()),
			ClosedIncidents: len(s.engine.Closed()),
		}
		s.mu.Unlock()
		if s.ingest != nil {
			st := s.ingest.Stats()
			view.TCPConnections = st.TCPConnections
			view.AlertsAccepted = st.AlertsAccepted
			view.AlertsRejected = st.AlertsRejected
			view.QueueHighWater = st.QueueHighWater
			view.RejectedTCPDecode = st.TCPDecodeErrors
			view.RejectedTCPInvalid = st.TCPInvalid
			view.RejectedUDPParse = st.UDPParseErrors
			view.RejectedUDPInvalid = st.UDPInvalid
			view.RejectedQueueFull = st.QueueFull
		}
		writeJSON(w, view)
	})
	if s.reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = s.reg.Expose(w)
		})
	}
	if s.journal != nil {
		mux.HandleFunc("/api/journal", func(w http.ResponseWriter, r *http.Request) {
			after := int64(-1)
			if q := r.URL.Query().Get("since"); q != "" {
				v, err := strconv.ParseInt(q, 10, 64)
				if err != nil {
					http.Error(w, "bad since sequence", http.StatusBadRequest)
					return
				}
				after = v
			}
			writeJSON(w, s.journal.Since(after))
		})
	}
	if s.build != nil {
		mux.HandleFunc("/api/buildinfo", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, s.build)
		})
	}
	if s.flight != nil {
		mux.HandleFunc("/api/health", s.healthHandler)
	}
	if s.tracer != nil {
		mux.HandleFunc("/api/trace", s.traceHandler)
	}
	if s.events != nil {
		mux.HandleFunc("/api/events", s.eventsHandler)
		mux.HandleFunc("/api/fanout", s.fanoutHandler)
	}
	if s.flood != nil {
		mux.HandleFunc("/api/floods", s.floodsHandler)
		mux.HandleFunc("/api/floods/", s.floodReportHandler)
	}
	if s.history != nil {
		mux.HandleFunc("/api/query", s.queryHandler)
	}
	if s.slo != nil {
		mux.HandleFunc("/api/slo", s.sloHandler)
	}
	if s.profiler != nil {
		mux.HandleFunc("/api/profile", s.profileHandler)
	}
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/api/incidents", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		ranked := evaluator.Rank(s.engine.Active())
		closed := s.engine.Closed()
		out := make([]IncidentSummary, 0, len(ranked)+len(closed))
		for _, in := range ranked {
			out = append(out, summarize(in))
		}
		for _, in := range closed {
			out = append(out, summarize(in))
		}
		s.mu.Unlock()
		writeJSON(w, out)
	})
	mux.HandleFunc("/api/incidents/", func(w http.ResponseWriter, r *http.Request) {
		idStr := strings.TrimPrefix(r.URL.Path, "/api/incidents/")
		wantSVG, wantExplain := false, false
		if rest, ok := strings.CutSuffix(idStr, "/graph.svg"); ok {
			idStr, wantSVG = rest, true
		} else if rest, ok := strings.CutSuffix(idStr, "/explain"); ok {
			idStr, wantExplain = rest, true
		}
		id, err := strconv.Atoi(idStr)
		if err != nil {
			http.Error(w, "bad incident id", http.StatusBadRequest)
			return
		}
		if wantSVG {
			s.serveGraphSVG(w, id)
			return
		}
		if wantExplain {
			s.serveExplain(w, id)
			return
		}
		s.mu.Lock()
		var found *incident.Incident
		for _, in := range s.engine.AllIncidents() {
			if in.ID == id {
				found = in
				break
			}
		}
		var detail IncidentDetail
		if found != nil {
			detail = IncidentDetail{
				IncidentSummary: summarize(found),
				Report:          found.Render(),
				LLMContext:      llmctx.Build(llmctx.DefaultConfig(), found).Text,
			}
		}
		s.mu.Unlock()
		if found == nil {
			http.Error(w, "incident not found", http.StatusNotFound)
			return
		}
		writeJSON(w, detail)
	})
	return mux
}

// serveExplain renders the provenance document of one incident: the
// trigger decision, evidence streams, score evidence, and sampled raw
// alert journeys.
func (s *Snapshotter) serveExplain(w http.ResponseWriter, id int) {
	if s.prov == nil {
		http.Error(w, "explain requires provenance recording (-provenance)", http.StatusNotImplemented)
		return
	}
	s.mu.Lock()
	var doc *provenance.Explain
	for _, in := range s.engine.AllIncidents() {
		if in.ID == id {
			doc = s.prov.Explain(in)
			break
		}
	}
	s.mu.Unlock()
	if doc == nil {
		http.Error(w, "incident not found", http.StatusNotFound)
		return
	}
	writeJSON(w, doc)
}

// serveGraphSVG renders the §7.1 voting graph of one incident.
func (s *Snapshotter) serveGraphSVG(w http.ResponseWriter, id int) {
	if s.topo == nil {
		http.Error(w, "graph rendering requires a topology (-scale)", http.StatusNotImplemented)
		return
	}
	s.mu.Lock()
	var svg string
	found := false
	for _, in := range s.engine.AllIncidents() {
		if in.ID == id {
			svg = viz.Build(s.topo, in).SVG()
			found = true
			break
		}
	}
	s.mu.Unlock()
	if !found {
		http.Error(w, "incident not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write([]byte(svg))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server wraps http.Server with graceful lifecycle.
type Server struct {
	http *http.Server
	ln   net.Listener
}

// Listen starts serving the snapshotter's handler on addr (":0" for
// ephemeral).
func Listen(addr string, s *Snapshotter, log *slog.Logger) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("status: listen %s: %w", addr, err)
	}
	srv := &Server{
		http: &http.Server{
			Handler:           s.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
		},
		ln: ln,
	}
	go func() {
		if err := srv.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			if log != nil {
				log.Warn("status: serve", "err", err)
			}
		}
	}()
	return srv, nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close shuts the server down gracefully.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	return s.http.Shutdown(ctx)
}
