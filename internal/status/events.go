package status

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"skynet/internal/flight"
	"skynet/internal/prof"
	"skynet/internal/span"
	"skynet/internal/telemetry"
)

// Event stream types on GET /api/events.
const (
	// EventTypeIncident carries a telemetry.Event — an incident lifecycle
	// transition (created, updated, zoomed, scored, closed).
	EventTypeIncident = "incident"
	// EventTypeAnomaly carries a flight.Event — a flight-recorder trigger
	// firing (tick_p99, ingest_shed, ...).
	EventTypeAnomaly = "anomaly"
)

// subBuffer is each subscriber's channel depth. A consumer that falls
// further behind than this loses events (counted, never blocking the
// pipeline).
const subBuffer = 64

// busMsg is one pre-rendered SSE frame.
type busMsg struct {
	event string
	data  []byte
}

// EventBus fans pipeline events out to SSE subscribers. Publishes are
// non-blocking: a slow consumer's buffer overflowing drops the event for
// that consumer only, accounted in Dropped. Safe for concurrent use;
// Close is idempotent and Publish after Close is a no-op.
type EventBus struct {
	mu     sync.Mutex
	subs   map[int]chan busMsg
	nextID int
	closed bool

	published atomic.Int64
	dropped   atomic.Int64
}

// NewEventBus creates an empty bus.
func NewEventBus() *EventBus {
	return &EventBus{subs: make(map[int]chan busMsg)}
}

// Subscribe registers a consumer and returns its id and receive channel.
// The channel closes when the bus closes. Callers must Unsubscribe when
// done.
func (b *EventBus) Subscribe() (int, <-chan busMsg) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan busMsg, subBuffer)
	if b.closed {
		close(ch)
		return -1, ch
	}
	id := b.nextID
	b.nextID++
	b.subs[id] = ch
	return id, ch
}

// Unsubscribe removes a consumer. Safe to call after Close or twice.
func (b *EventBus) Unsubscribe(id int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ch, ok := b.subs[id]; ok {
		delete(b.subs, id)
		close(ch)
	}
}

// Publish renders v as one JSON SSE frame of the given event type and
// offers it to every subscriber without blocking.
func (b *EventBus) Publish(event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.published.Add(1)
	for _, ch := range b.subs {
		select {
		case ch <- busMsg{event: event, data: data}:
		default:
			b.dropped.Add(1)
		}
	}
}

// Close shuts the bus down: every subscriber's channel closes and later
// Publish calls are dropped.
func (b *EventBus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, ch := range b.subs {
		delete(b.subs, id)
		close(ch)
	}
}

// Subscribers reports the current consumer count.
func (b *EventBus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Published reports events offered to the bus over its lifetime.
func (b *EventBus) Published() int64 { return b.published.Load() }

// Dropped reports per-consumer deliveries lost to full buffers.
func (b *EventBus) Dropped() int64 { return b.dropped.Load() }

// RegisterMetrics exposes the bus's own accounting on a registry.
func (b *EventBus) RegisterMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("skynet_events_subscribers",
		"Current SSE consumers on /api/events.",
		func() float64 { return float64(b.Subscribers()) })
	reg.CounterFunc("skynet_events_published_total",
		"Events published to the SSE bus.",
		func() float64 { return float64(b.Published()) })
	reg.CounterFunc("skynet_events_dropped_total",
		"SSE deliveries dropped because a consumer's buffer was full.",
		func() float64 { return float64(b.Dropped()) })
}

// WithFlight mounts GET /api/health serving the flight recorder's
// self-SLO verdict: HTTP 200 while healthy, 503 while any anomaly
// trigger is firing. The handler reads recorder state only — it never
// takes the engine lock.
func (s *Snapshotter) WithFlight(rec *flight.Recorder) *Snapshotter {
	s.flight = rec
	return s
}

// WithTracer mounts GET /api/trace serving recent tick span trees as
// JSON (?last=N bounds the count; default the full ring). Traces are
// deep copies; the handler does not take the engine lock.
func (s *Snapshotter) WithTracer(tr *span.Tracer) *Snapshotter {
	s.tracer = tr
	return s
}

// WithEvents mounts GET /api/events, a Server-Sent Events stream of
// incident lifecycle transitions and flight-recorder anomalies.
func (s *Snapshotter) WithEvents(bus *EventBus) *Snapshotter {
	s.events = bus
	return s
}

// healthView is the /api/health JSON shape: the flight recorder's
// verdict, the HTTP-level status string, and the Go-runtime panel
// (goroutines, heap, last GC pause) so a single probe feeds a dashboard.
type healthView struct {
	Status string `json:"status"` // "ok" | "degraded"
	flight.Health
	Runtime prof.RuntimeStats `json:"runtime"`
}

func (s *Snapshotter) healthHandler(w http.ResponseWriter, r *http.Request) {
	h := s.flight.Health()
	view := healthView{Status: "ok", Health: h, Runtime: prof.ReadRuntimeStats()}
	code := http.StatusOK
	if !h.OK {
		view.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(view)
}

// traceView is the /api/trace JSON shape.
type traceView struct {
	// Ticks is the tracer's lifetime finished-trace count.
	Ticks int64 `json:"ticks"`
	// Traces is the requested slice of the ring, oldest first.
	Traces []span.Trace `json:"traces"`
}

func (s *Snapshotter) traceHandler(w http.ResponseWriter, r *http.Request) {
	last := 0 // whole ring
	if q := r.URL.Query().Get("last"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "bad last count", http.StatusBadRequest)
			return
		}
		last = v
	}
	writeJSON(w, traceView{Ticks: s.tracer.TickCount(), Traces: s.tracer.Last(last)})
}

// eventsHandler streams the bus over SSE until the client disconnects or
// the bus closes.
func (s *Snapshotter) eventsHandler(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	id, ch := s.events.Subscribe()
	defer s.events.Unsubscribe(id)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case msg, open := <-ch:
			if !open {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", msg.event, msg.data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
