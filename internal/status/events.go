package status

import (
	"encoding/json"
	"net/http"
	"strconv"

	"skynet/internal/fanout"
	"skynet/internal/flight"
	"skynet/internal/prof"
	"skynet/internal/span"
)

// Event stream types on GET /api/events. Wire-compatible with the
// pre-fanout EventBus stream; frames now additionally carry SSE id
// lines (ring sequence numbers), which old clients ignore and new
// clients echo back as Last-Event-ID to resume.
const (
	// EventTypeIncident carries a telemetry.Event — an incident lifecycle
	// transition (created, updated, zoomed, scored, closed).
	EventTypeIncident = fanout.EventIncident
	// EventTypeAnomaly carries a flight.Event — a flight-recorder trigger
	// firing (tick_p99, ingest_shed, ...).
	EventTypeAnomaly = fanout.EventAnomaly
	// EventTypeSnapshot carries the full incident-feed state as of one
	// tick — what a fresh or resyncing consumer renders from.
	EventTypeSnapshot = fanout.EventSnapshot
	// EventTypeDelta carries one tick's feed changes (possibly merged
	// across several ticks for a lagging consumer).
	EventTypeDelta = fanout.EventDelta
	// EventTypeResync announces a drop-accounted gap: the consumer fell
	// off the ring and continues from the accompanying snapshot.
	EventTypeResync = fanout.EventResync
)

// WithFlight mounts GET /api/health serving the flight recorder's
// self-SLO verdict: HTTP 200 while healthy, 503 while any anomaly
// trigger is firing. The handler reads recorder state only — it never
// takes the engine lock.
func (s *Snapshotter) WithFlight(rec *flight.Recorder) *Snapshotter {
	s.flight = rec
	return s
}

// WithTracer mounts GET /api/trace serving recent tick span trees as
// JSON (?last=N bounds the count; default the full ring). Traces are
// deep copies; the handler does not take the engine lock.
func (s *Snapshotter) WithTracer(tr *span.Tracer) *Snapshotter {
	s.tracer = tr
	return s
}

// WithEvents mounts GET /api/events — the snapshot+delta SSE feed
// served from the fan-out hub's shared ring — and GET /api/fanout, the
// hub's serving statistics. Handlers never take the engine lock; they
// hold references into pre-encoded frames.
func (s *Snapshotter) WithEvents(hub *fanout.Hub) *Snapshotter {
	s.events = hub
	return s
}

// healthView is the /api/health JSON shape: the flight recorder's
// verdict, the HTTP-level status string, and the Go-runtime panel
// (goroutines, heap, last GC pause) so a single probe feeds a dashboard.
type healthView struct {
	Status string `json:"status"` // "ok" | "degraded"
	flight.Health
	Runtime prof.RuntimeStats `json:"runtime"`
}

func (s *Snapshotter) healthHandler(w http.ResponseWriter, r *http.Request) {
	h := s.flight.Health()
	view := healthView{Status: "ok", Health: h, Runtime: prof.ReadRuntimeStats()}
	code := http.StatusOK
	if !h.OK {
		view.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(view)
}

// traceView is the /api/trace JSON shape.
type traceView struct {
	// Ticks is the tracer's lifetime finished-trace count.
	Ticks int64 `json:"ticks"`
	// Traces is the requested slice of the ring, oldest first.
	Traces []span.Trace `json:"traces"`
}

func (s *Snapshotter) traceHandler(w http.ResponseWriter, r *http.Request) {
	last := 0 // whole ring
	if q := r.URL.Query().Get("last"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "bad last count", http.StatusBadRequest)
			return
		}
		last = v
	}
	writeJSON(w, traceView{Ticks: s.tracer.TickCount(), Traces: s.tracer.Last(last)})
}

// lastEventID extracts the resume cursor: the standard SSE
// Last-Event-ID header (set by EventSource on reconnect), with a
// last_event_id query parameter as the curl-friendly fallback.
// Returns -1 (fresh subscriber) when absent or malformed.
func lastEventID(r *http.Request) int64 {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("last_event_id")
	}
	if raw == "" {
		return -1
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || v < 0 {
		return -1
	}
	return v
}

// eventsHandler streams the fan-out hub over SSE until the client
// disconnects, the hub closes, or the subscriber is evicted as a slow
// consumer. Frames are written by reference from the hub's shared
// ring: the handler never copies or re-encodes a payload. A fresh
// client receives the latest snapshot then live deltas; a resuming
// client (Last-Event-ID) continues mid-stream, resynced from the
// snapshot if its cursor has fallen off the ring.
func (s *Snapshotter) eventsHandler(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub, err := s.events.Subscribe(fanout.SubscribeOptions{Cursor: lastEventID(r)})
	if err != nil {
		http.Error(w, "event stream closed", http.StatusServiceUnavailable)
		return
	}
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	ctx := r.Context()
	for {
		frames, err := sub.Wait(ctx)
		if err != nil {
			if err == fanout.ErrEvicted {
				// Best-effort notice; the client reconnects with its
				// Last-Event-ID and is resynced from the snapshot.
				_, _ = w.Write([]byte("event: eviction\ndata: {\"reason\":\"slow_consumer\"}\n\n"))
			}
			return
		}
		werr := error(nil)
		for _, f := range frames {
			if werr == nil {
				_, werr = w.Write(f.Bytes())
			}
			f.Release()
		}
		if werr != nil {
			return
		}
		fl.Flush()
	}
}

// fanoutHandler serves the hub's serving-layer statistics: subscriber
// count, ring position, coalescing/resync/eviction counters, and
// per-kind drop accounting.
func (s *Snapshotter) fanoutHandler(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.events.StatsSnapshot())
}
