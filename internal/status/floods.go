package status

import (
	"net/http"
	"strconv"
	"strings"

	"skynet/internal/flood"
)

// EventTypeFlood carries a flood.Event — a flood-episode lifecycle
// transition (onset, peak, decay, closed) from the episode detector.
const EventTypeFlood = "flood"

// WithFlood mounts GET /api/floods (all detected flood episodes, oldest
// first, the open one last) and GET /api/floods/{id}/report (one
// episode's full postmortem report). The flood recorder is internally
// synchronized; the handlers never take the engine lock.
func (s *Snapshotter) WithFlood(rec *flood.Recorder) *Snapshotter {
	s.flood = rec
	return s
}

// floodSummary is the /api/floods list-view shape: the report minus its
// bulky sections, enough to rank and pick episodes for a detail fetch.
type floodSummary struct {
	ID                 uint64      `json:"id"`
	Phase              flood.Phase `json:"phase"`
	StartTick          uint64      `json:"start_tick"`
	EndTick            uint64      `json:"end_tick"`
	DurationTicks      uint64      `json:"duration_ticks"`
	RawTotal           int64       `json:"raw_total"`
	StructuredTotal    int64       `json:"structured_total"`
	ConsolidationRatio float64     `json:"consolidation_ratio"`
	PeakRate           int64       `json:"peak_rate"`
	Incidents          int         `json:"incidents"`
	MaxSeverity        float64     `json:"max_severity"`
	Scenario           string      `json:"scenario,omitempty"`
}

func (s *Snapshotter) floodsHandler(w http.ResponseWriter, r *http.Request) {
	eps := s.flood.Episodes()
	out := make([]floodSummary, 0, len(eps))
	for i := range eps {
		ep := &eps[i]
		out = append(out, floodSummary{
			ID:                 ep.ID,
			Phase:              ep.Phase,
			StartTick:          ep.StartTick,
			EndTick:            ep.EndTick,
			DurationTicks:      ep.DurationTicks,
			RawTotal:           ep.RawTotal,
			StructuredTotal:    ep.StructuredTotal,
			ConsolidationRatio: ep.ConsolidationRatio,
			PeakRate:           ep.PeakRate,
			Incidents:          len(ep.Incidents),
			MaxSeverity:        ep.MaxSeverity,
			Scenario:           ep.Scenario,
		})
	}
	writeJSON(w, out)
}

func (s *Snapshotter) floodReportHandler(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/floods/")
	idStr, ok := strings.CutSuffix(rest, "/report")
	if !ok || idStr == "" || strings.Contains(idStr, "/") {
		http.Error(w, "want /api/floods/{id}/report", http.StatusNotFound)
		return
	}
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		http.Error(w, "bad flood episode id", http.StatusBadRequest)
		return
	}
	rep, ok := s.flood.Report(id)
	if !ok {
		http.Error(w, "flood episode not found", http.StatusNotFound)
		return
	}
	writeJSON(w, rep)
}
