package status

import (
	"html/template"
	"net/http"
	"time"

	"skynet/internal/evaluator"
)

// The human-facing face of §7.1's visualization frontend: a minimal,
// dependency-free HTML dashboard at "/" listing incidents by severity with
// their Figure 6 reports inline. Dashboards wanting richer views consume
// /api/incidents instead.

var pageTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="10">
<title>SkyNet incidents</title>
<style>
body { font-family: ui-monospace, monospace; margin: 2rem; background: #101418; color: #d6dde4; }
h1 { font-size: 1.2rem; }
table { border-collapse: collapse; width: 100%; margin-bottom: 1.5rem; }
th, td { text-align: left; padding: .3rem .8rem; border-bottom: 1px solid #2a323a; }
tr.severe td { color: #ff9a62; }
tr.closed td { color: #6b7682; }
pre { background: #171d23; padding: 1rem; overflow-x: auto; border-radius: 4px; }
.sub { color: #8a96a3; }
</style>
</head>
<body>
<h1>SkyNet — incidents</h1>
<p class="sub">{{.Stats.RawIngested}} raw alerts ingested · {{.Stats.Structured}} structured ·
{{.Stats.ActiveIncidents}} active / {{.Stats.ClosedIncidents}} closed incidents · refreshed {{.Now}}</p>
<table>
<tr><th>id</th><th>severity</th><th>state</th><th>root</th><th>zoomed</th><th>alerts</th><th>window</th></tr>
{{range .Incidents}}<tr class="{{.Class}}">
<td><a href="/api/incidents/{{.ID}}">{{.ID}}</a></td>
<td>{{printf "%.1f" .Severity}}</td>
<td>{{.State}}</td>
<td>{{.Root}}</td>
<td>{{.Zoomed}}</td>
<td>{{.AlertCount}}</td>
<td>{{.Window}}</td>
</tr>{{end}}
</table>
{{range .Reports}}<pre>{{.}}</pre>
{{end}}
</body>
</html>
`))

type pageIncident struct {
	ID         int
	Severity   float64
	State      string
	Class      string
	Root       string
	Zoomed     string
	AlertCount int
	Window     string
}

type pageData struct {
	Stats     StatsView
	Now       string
	Incidents []pageIncident
	Reports   []string
}

// indexHandler renders the dashboard.
func (s *Snapshotter) indexHandler(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	data := pageData{
		Stats: StatsView{
			RawIngested:     s.engine.RawIngested(),
			Structured:      s.engine.PreprocessStats().Out,
			ActiveIncidents: len(s.engine.Active()),
			ClosedIncidents: len(s.engine.Closed()),
		},
		Now: time.Now().Format(time.TimeOnly),
	}
	severityThreshold := 10.0
	for _, in := range append(evaluator.Rank(s.engine.Active()), s.engine.Closed()...) {
		end := in.UpdateTime
		state, class := "active", ""
		if !in.End.IsZero() {
			end = in.End
			state, class = "closed", "closed"
		} else if in.Severity >= severityThreshold {
			class = "severe"
		}
		data.Incidents = append(data.Incidents, pageIncident{
			ID:         in.ID,
			Severity:   in.Severity,
			State:      state,
			Class:      class,
			Root:       in.Root.String(),
			Zoomed:     in.Zoomed.String(),
			AlertCount: in.AlertCount(),
			Window: in.Start.Format(time.TimeOnly) + " – " +
				end.Format(time.TimeOnly),
		})
	}
	for _, in := range evaluator.Rank(s.engine.Active()) {
		data.Reports = append(data.Reports, in.Render())
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = pageTmpl.Execute(w, data)
}
