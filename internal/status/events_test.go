package status

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"skynet/internal/fanout"
	"skynet/internal/flight"
	"skynet/internal/span"
	"skynet/internal/telemetry"
)

// listenHub starts a real HTTP server (httptest's recorder cannot
// stream) serving a snapshotter with the fan-out hub mounted and
// returns the base URL.
func listenHub(t *testing.T, hub *fanout.Hub) string {
	t.Helper()
	eng, mu := loadedEngine(t)
	srv, err := Listen("127.0.0.1:0", NewSnapshotter(mu, eng, nil).WithEvents(hub), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return "http://" + srv.Addr().String()
}

// sseFrame is one parsed id/event/data record from the stream.
type sseFrame struct {
	id    string
	event string
	data  string
}

// readFrames consumes n frames from an open SSE response body.
func readFrames(t *testing.T, r *bufio.Reader, n int) []sseFrame {
	t.Helper()
	var out []sseFrame
	var cur sseFrame
	for len(out) < n {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended after %d of %d frames: %v", len(out), n, err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.event != "":
			out = append(out, cur)
			cur = sseFrame{}
		}
	}
	return out
}

func hubSubscribers(hub *fanout.Hub) int64 { return hub.StatsSnapshot().Subscribers }

// TestSSEDeliversJournalAndFlightEvents wires the hub the way skynetd
// does — journal notify and flight notify — and checks both event types
// arrive on a live connection with ring-sequence ids, then that
// disconnecting mid-stream unsubscribes the consumer.
func TestSSEDeliversJournalAndFlightEvents(t *testing.T) {
	hub := fanout.NewHub(fanout.Config{Ring: 64})
	defer hub.Close()
	base := listenHub(t, hub)

	journal := telemetry.NewJournal(16)
	journal.SetNotify(func(ev telemetry.Event) { hub.Publish(EventTypeIncident, ev) })
	rec := flight.New(flight.Config{Window: 4, SLOTickP99: time.Millisecond}, flight.Sources{})
	rec.SetNotify(func(ev flight.Event) { hub.Publish(EventTypeAnomaly, ev) })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	for i := 0; hubSubscribers(hub) == 0 && i < 100; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if hubSubscribers(hub) != 1 {
		t.Fatal("consumer never subscribed")
	}

	journal.Append(telemetry.Event{Type: telemetry.EventCreated, Incident: 7, Root: "RG01"})
	rec.Observe(epoch, time.Second) // breaches the 1ms SLO → anomaly event

	frames := readFrames(t, bufio.NewReader(resp.Body), 2)
	if frames[0].event != EventTypeIncident {
		t.Fatalf("frame 0 event = %q", frames[0].event)
	}
	if frames[0].id == "" || frames[1].id == "" {
		t.Fatalf("frames missing SSE ids: %+v", frames)
	}
	var je telemetry.Event
	if err := json.Unmarshal([]byte(frames[0].data), &je); err != nil || je.Incident != 7 {
		t.Fatalf("frame 0 data = %q (%v)", frames[0].data, err)
	}
	if frames[1].event != EventTypeAnomaly {
		t.Fatalf("frame 1 event = %q", frames[1].event)
	}
	var fe flight.Event
	if err := json.Unmarshal([]byte(frames[1].data), &fe); err != nil || fe.Trigger != flight.TriggerTickP99 {
		t.Fatalf("frame 1 data = %q (%v)", frames[1].data, err)
	}

	// Disconnect mid-stream: the handler must unsubscribe.
	cancel()
	for i := 0; hubSubscribers(hub) != 0 && i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if got := hubSubscribers(hub); got != 0 {
		t.Fatalf("subscribers = %d after client disconnect", got)
	}
	// Publishing after the disconnect must not panic or block.
	journal.Append(telemetry.Event{Type: telemetry.EventClosed, Incident: 7})
}

// TestSSELastEventIDResume reconnects with the Last-Event-ID of a frame
// from a first connection and must receive exactly the frames published
// after it — no snapshot replay, no duplicates.
func TestSSELastEventIDResume(t *testing.T) {
	hub := fanout.NewHub(fanout.Config{Ring: 64})
	defer hub.Close()
	base := listenHub(t, hub)

	resp, err := http.Get(base + "/api/events")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; hubSubscribers(hub) == 0 && i < 100; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	hub.Publish(EventTypeIncident, map[string]int{"i": 0})
	frames := readFrames(t, bufio.NewReader(resp.Body), 1)
	resp.Body.Close()
	if frames[0].id == "" {
		t.Fatalf("no id on first frame: %+v", frames)
	}

	hub.Publish(EventTypeIncident, map[string]int{"i": 1})
	hub.Publish(EventTypeAnomaly, map[string]int{"i": 2})

	req, _ := http.NewRequest(http.MethodGet, base+"/api/events", nil)
	req.Header.Set("Last-Event-ID", frames[0].id)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	resumed := readFrames(t, bufio.NewReader(resp2.Body), 2)
	var a, b map[string]int
	if err := json.Unmarshal([]byte(resumed[0].data), &a); err != nil || a["i"] != 1 {
		t.Fatalf("resumed frame 0 = %+v (%v)", resumed[0], err)
	}
	if err := json.Unmarshal([]byte(resumed[1].data), &b); err != nil || b["i"] != 2 || resumed[1].event != EventTypeAnomaly {
		t.Fatalf("resumed frame 1 = %+v (%v)", resumed[1], err)
	}
}

// TestFanoutStatsEndpoint pins the /api/fanout JSON shape.
func TestFanoutStatsEndpoint(t *testing.T) {
	hub := fanout.NewHub(fanout.Config{Ring: 64})
	defer hub.Close()
	eng, mu := loadedEngine(t)
	h := NewSnapshotter(mu, eng, nil).WithEvents(hub).Handler()
	hub.Publish(EventTypeIncident, map[string]int{"i": 0})
	code, body := get(t, h, "/api/fanout")
	if code != http.StatusOK {
		t.Fatalf("code=%d", code)
	}
	var st fanout.Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Published != 1 || st.RingSize != 64 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestFanoutHubConcurrentShutdown races publishers, subscribers, and
// Close — meaningful under -race. No ordering assertions; the invariant
// is no panic, no deadlock, and every Wait returns.
func TestFanoutHubConcurrentShutdown(t *testing.T) {
	hub := fanout.NewHub(fanout.Config{Ring: 32})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				hub.Publish(EventTypeAnomaly, i)
			}
		}()
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sub, err := hub.Subscribe(fanout.SubscribeOptions{Cursor: -1})
				if err != nil {
					return // hub closed
				}
				if frames, _, err := sub.Poll(); err == nil {
					sub.ReleaseAll(frames)
				}
				sub.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		hub.Close()
	}()
	wg.Wait()
	hub.Close() // idempotent
	if _, err := hub.Subscribe(fanout.SubscribeOptions{Cursor: -1}); err != fanout.ErrClosed {
		t.Fatalf("subscribe after close: %v", err)
	}
	hub.Publish(EventTypeAnomaly, "after close") // must be a no-op
}

// TestHealthEndpointFlipsWithRecorder drives the flight recorder through
// degraded and back; /api/health must follow with 503 and 200.
func TestHealthEndpointFlipsWithRecorder(t *testing.T) {
	eng, mu := loadedEngine(t)
	rec := flight.New(flight.Config{Window: 2, SLOTickP99: 100 * time.Millisecond}, flight.Sources{})
	h := NewSnapshotter(mu, eng, nil).WithFlight(rec).Handler()

	rec.Observe(epoch, time.Millisecond)
	code, body := get(t, h, "/api/health")
	if code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("healthy: code=%d body=%s", code, body)
	}
	rec.Observe(epoch.Add(10*time.Second), time.Second)
	code, body = get(t, h, "/api/health")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"status": "degraded"`) {
		t.Fatalf("degraded: code=%d body=%s", code, body)
	}
	if !strings.Contains(body, flight.TriggerTickP99) {
		t.Fatalf("degraded body missing trigger name: %s", body)
	}
	for i := 0; i < 2; i++ {
		rec.Observe(epoch.Add(time.Duration(20+10*i)*time.Second), time.Millisecond)
	}
	if code, _ = get(t, h, "/api/health"); code != http.StatusOK {
		t.Fatalf("recovered: code=%d", code)
	}
}

// TestTraceEndpoint serves span trees recorded by a tracer.
func TestTraceEndpoint(t *testing.T) {
	eng, mu := loadedEngine(t)
	tracer := span.NewTracer(8)
	for tick := uint64(1); tick <= 5; tick++ {
		act := tracer.StartTick(tick, epoch)
		r := act.Begin(span.Root, "preprocess")
		act.End(r, int(tick))
		act.Finish()
	}
	h := NewSnapshotter(mu, eng, nil).WithTracer(tracer).Handler()
	code, body := get(t, h, "/api/trace?last=2")
	if code != http.StatusOK {
		t.Fatalf("code=%d", code)
	}
	var view struct {
		Ticks  int64        `json:"ticks"`
		Traces []span.Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if view.Ticks != 5 || len(view.Traces) != 2 {
		t.Fatalf("ticks=%d traces=%d, want 5 and 2", view.Ticks, len(view.Traces))
	}
	if view.Traces[0].Tick != 4 || view.Traces[1].Tick != 5 {
		t.Fatalf("trace ticks = %d,%d, want 4,5", view.Traces[0].Tick, view.Traces[1].Tick)
	}
	if len(view.Traces[0].Spans) != 2 || view.Traces[0].Spans[1].Name != "preprocess" {
		t.Fatalf("span tree malformed: %+v", view.Traces[0].Spans)
	}
	if code, _ := get(t, h, "/api/trace?last=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad last: code=%d", code)
	}
}

// TestSSEStalledHTTPConsumerNeverBlocksPublisher is the end-to-end
// slow-consumer test on a live /api/events connection: a client that
// reads the response headers and then stalls forever must not block the
// publishing side — the path an engine tick takes through the journal
// notify. The hub keeps rolling its ring past the stalled consumer and
// eventually evicts it; publishes always complete.
func TestSSEStalledHTTPConsumerNeverBlocksPublisher(t *testing.T) {
	hub := fanout.NewHub(fanout.Config{Ring: 64, EvictAfter: 16})
	defer hub.Close()
	base := listenHub(t, hub)

	journal := telemetry.NewJournal(16)
	journal.SetNotify(func(ev telemetry.Event) { hub.Publish(EventTypeIncident, ev) })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	for i := 0; hubSubscribers(hub) == 0 && i < 100; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if hubSubscribers(hub) != 1 {
		t.Fatal("consumer never subscribed")
	}
	// The client now stalls: it never reads the body. The handler's
	// write blocks once the kernel socket buffers fill, its cursor
	// freezes, and every publish must complete without waiting while
	// the ring rolls past it. Oversized payloads make the stall happen
	// within a few frames.
	pad := strings.Repeat("x", 64<<10)
	const publishes = 512
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < publishes; i++ {
			journal.Append(telemetry.Event{Type: telemetry.EventCreated, Incident: i, Root: pad})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked behind the stalled SSE consumer")
	}
	st := hub.StatsSnapshot()
	if st.Published != publishes {
		t.Errorf("published = %d, want %d (publishes must complete regardless of the stall)",
			st.Published, publishes)
	}
	// The stalled consumer stopped polling with 512 frames queued
	// against a 64-slot ring + 16 slack: it must have been evicted.
	if st.Evictions == 0 {
		t.Error("stalled consumer was never evicted")
	}
	if st.QueueHighWater == 0 {
		t.Error("queue high-water never recorded the stalled consumer's backlog")
	}
}
