package status

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"skynet/internal/flight"
	"skynet/internal/span"
	"skynet/internal/telemetry"
)

// listenBus starts a real HTTP server (httptest's recorder cannot stream)
// serving a snapshotter with the bus mounted and returns the base URL.
func listenBus(t *testing.T, bus *EventBus) string {
	t.Helper()
	eng, mu := loadedEngine(t)
	srv, err := Listen("127.0.0.1:0", NewSnapshotter(mu, eng, nil).WithEvents(bus), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return "http://" + srv.Addr().String()
}

// sseFrame is one parsed event/data pair from the stream.
type sseFrame struct {
	event string
	data  string
}

// readFrames consumes n frames from an open SSE response body.
func readFrames(t *testing.T, r *bufio.Reader, n int) []sseFrame {
	t.Helper()
	var out []sseFrame
	var cur sseFrame
	for len(out) < n {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended after %d of %d frames: %v", len(out), n, err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.event != "":
			out = append(out, cur)
			cur = sseFrame{}
		}
	}
	return out
}

// TestSSEDeliversJournalAndFlightEvents wires the bus the way skynetd
// does — journal notify and flight notify — and checks both event types
// arrive on a live connection, then that disconnecting mid-stream
// unsubscribes the consumer.
func TestSSEDeliversJournalAndFlightEvents(t *testing.T) {
	bus := NewEventBus()
	defer bus.Close()
	base := listenBus(t, bus)

	journal := telemetry.NewJournal(16)
	journal.SetNotify(func(ev telemetry.Event) { bus.Publish(EventTypeIncident, ev) })
	rec := flight.New(flight.Config{Window: 4, SLOTickP99: time.Millisecond}, flight.Sources{})
	rec.SetNotify(func(ev flight.Event) { bus.Publish(EventTypeAnomaly, ev) })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	for i := 0; bus.Subscribers() == 0 && i < 100; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if bus.Subscribers() != 1 {
		t.Fatal("consumer never subscribed")
	}

	journal.Append(telemetry.Event{Type: telemetry.EventCreated, Incident: 7, Root: "RG01"})
	rec.Observe(epoch, time.Second) // breaches the 1ms SLO → anomaly event

	frames := readFrames(t, bufio.NewReader(resp.Body), 2)
	if frames[0].event != EventTypeIncident {
		t.Fatalf("frame 0 event = %q", frames[0].event)
	}
	var je telemetry.Event
	if err := json.Unmarshal([]byte(frames[0].data), &je); err != nil || je.Incident != 7 {
		t.Fatalf("frame 0 data = %q (%v)", frames[0].data, err)
	}
	if frames[1].event != EventTypeAnomaly {
		t.Fatalf("frame 1 event = %q", frames[1].event)
	}
	var fe flight.Event
	if err := json.Unmarshal([]byte(frames[1].data), &fe); err != nil || fe.Trigger != flight.TriggerTickP99 {
		t.Fatalf("frame 1 data = %q (%v)", frames[1].data, err)
	}

	// Disconnect mid-stream: the handler must unsubscribe.
	cancel()
	for i := 0; bus.Subscribers() != 0 && i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if got := bus.Subscribers(); got != 0 {
		t.Fatalf("subscribers = %d after client disconnect", got)
	}
	// Publishing after the disconnect must not panic or block.
	journal.Append(telemetry.Event{Type: telemetry.EventClosed, Incident: 7})
}

// TestSSESlowConsumerDropAccounting fills a subscriber's buffer without
// draining it: excess publishes are dropped and counted, and the fast
// path never blocks.
func TestSSESlowConsumerDropAccounting(t *testing.T) {
	bus := NewEventBus()
	defer bus.Close()
	id, ch := bus.Subscribe()
	defer bus.Unsubscribe(id)
	const extra = 10
	for i := 0; i < subBuffer+extra; i++ {
		bus.Publish(EventTypeIncident, map[string]int{"i": i})
	}
	if got := bus.Dropped(); got != extra {
		t.Fatalf("dropped = %d, want %d", got, extra)
	}
	if got := bus.Published(); got != subBuffer+extra {
		t.Fatalf("published = %d, want %d", got, subBuffer+extra)
	}
	if got := len(ch); got != subBuffer {
		t.Fatalf("buffered = %d, want full buffer %d", got, subBuffer)
	}
	// The retained frames are the oldest ones, in order.
	first := <-ch
	var v map[string]int
	if err := json.Unmarshal(first.data, &v); err != nil || v["i"] != 0 {
		t.Fatalf("first retained frame = %s (%v)", first.data, err)
	}
}

// TestEventBusConcurrentShutdown races publishers, subscribers, and Close
// — meaningful under -race. No ordering assertions; the invariant is no
// panic, no deadlock, and channels all close.
func TestEventBusConcurrentShutdown(t *testing.T) {
	bus := NewEventBus()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				bus.Publish(EventTypeAnomaly, i)
			}
		}()
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id, ch := bus.Subscribe()
				for range ch { // drain until closed by Unsubscribe or Close
					break
				}
				bus.Unsubscribe(id)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		bus.Close()
	}()
	wg.Wait()
	bus.Close() // idempotent
	if id, ch := bus.Subscribe(); id != -1 {
		t.Fatal("subscribe after close returned a live id")
	} else if _, open := <-ch; open {
		t.Fatal("subscribe after close returned an open channel")
	}
	bus.Publish(EventTypeAnomaly, "after close") // must be a no-op
}

// TestHealthEndpointFlipsWithRecorder drives the flight recorder through
// degraded and back; /api/health must follow with 503 and 200.
func TestHealthEndpointFlipsWithRecorder(t *testing.T) {
	eng, mu := loadedEngine(t)
	rec := flight.New(flight.Config{Window: 2, SLOTickP99: 100 * time.Millisecond}, flight.Sources{})
	h := NewSnapshotter(mu, eng, nil).WithFlight(rec).Handler()

	rec.Observe(epoch, time.Millisecond)
	code, body := get(t, h, "/api/health")
	if code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("healthy: code=%d body=%s", code, body)
	}
	rec.Observe(epoch.Add(10*time.Second), time.Second)
	code, body = get(t, h, "/api/health")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"status": "degraded"`) {
		t.Fatalf("degraded: code=%d body=%s", code, body)
	}
	if !strings.Contains(body, flight.TriggerTickP99) {
		t.Fatalf("degraded body missing trigger name: %s", body)
	}
	for i := 0; i < 2; i++ {
		rec.Observe(epoch.Add(time.Duration(20+10*i)*time.Second), time.Millisecond)
	}
	if code, _ = get(t, h, "/api/health"); code != http.StatusOK {
		t.Fatalf("recovered: code=%d", code)
	}
}

// TestTraceEndpoint serves span trees recorded by a tracer.
func TestTraceEndpoint(t *testing.T) {
	eng, mu := loadedEngine(t)
	tracer := span.NewTracer(8)
	for tick := uint64(1); tick <= 5; tick++ {
		act := tracer.StartTick(tick, epoch)
		r := act.Begin(span.Root, "preprocess")
		act.End(r, int(tick))
		act.Finish()
	}
	h := NewSnapshotter(mu, eng, nil).WithTracer(tracer).Handler()
	code, body := get(t, h, "/api/trace?last=2")
	if code != http.StatusOK {
		t.Fatalf("code=%d", code)
	}
	var view struct {
		Ticks  int64        `json:"ticks"`
		Traces []span.Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if view.Ticks != 5 || len(view.Traces) != 2 {
		t.Fatalf("ticks=%d traces=%d, want 5 and 2", view.Ticks, len(view.Traces))
	}
	if view.Traces[0].Tick != 4 || view.Traces[1].Tick != 5 {
		t.Fatalf("trace ticks = %d,%d, want 4,5", view.Traces[0].Tick, view.Traces[1].Tick)
	}
	if len(view.Traces[0].Spans) != 2 || view.Traces[0].Spans[1].Name != "preprocess" {
		t.Fatalf("span tree malformed: %+v", view.Traces[0].Spans)
	}
	if code, _ := get(t, h, "/api/trace?last=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad last: code=%d", code)
	}
}

// TestSSEStalledHTTPConsumerNeverBlocksPublisher is the end-to-end
// slow-consumer test on a live /api/events connection: a client that
// reads the response headers and then stalls forever must not block the
// publishing side — the path an engine tick takes through the journal
// notify — and the lost deliveries must show up in Dropped().
func TestSSEStalledHTTPConsumerNeverBlocksPublisher(t *testing.T) {
	bus := NewEventBus()
	defer bus.Close()
	base := listenBus(t, bus)

	journal := telemetry.NewJournal(16)
	journal.SetNotify(func(ev telemetry.Event) { bus.Publish(EventTypeIncident, ev) })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	for i := 0; bus.Subscribers() == 0 && i < 100; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if bus.Subscribers() != 1 {
		t.Fatal("consumer never subscribed")
	}
	// The client now stalls: it never reads the body. The handler drains
	// the subscriber channel until the kernel socket buffers fill, then
	// blocks on the write — from here on the channel stays full and
	// every publish must drop for this consumer without waiting.
	// Oversized payloads make the stall happen within a few frames.
	pad := strings.Repeat("x", 64<<10)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4*subBuffer; i++ {
			journal.Append(telemetry.Event{Type: telemetry.EventCreated, Incident: i, Root: pad})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked behind the stalled SSE consumer")
	}
	if got := bus.Dropped(); got == 0 {
		t.Error("stalled consumer recorded no drops")
	}
	if got := bus.Published(); got != 4*subBuffer {
		t.Errorf("published = %d, want %d (publishes must complete regardless of the stall)", got, 4*subBuffer)
	}
}
