package status

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/flood"
	"skynet/internal/hierarchy"
)

// floodedRecorder drives a flood recorder through one full episode.
func floodedRecorder(t *testing.T) *flood.Recorder {
	t.Helper()
	rec := flood.New(flood.Config{})
	a := alert.Alert{
		Source:   alert.SourcePing,
		Type:     alert.TypePacketLoss,
		Location: hierarchy.MustNew("RG01", "CT01", "LS01", "ST01", "CL01", "dev-a"),
	}
	feed := func(tick uint64, raw int) {
		batch := make([]alert.Alert, 0, raw)
		for i := 0; i < raw; i++ {
			rec.ObserveRaw(a)
			batch = append(batch, a)
		}
		rec.ObserveTick(epoch.Add(time.Duration(tick)*10*time.Second), tick, batch, nil, nil, nil)
	}
	tick := uint64(0)
	for ; tick < 5; tick++ {
		feed(tick, 1)
	}
	for ; tick < 10; tick++ {
		feed(tick, 100)
	}
	for ; tick < 30 && rec.ClosedCount() == 0; tick++ {
		feed(tick, 0)
	}
	if rec.ClosedCount() != 1 {
		t.Fatal("setup: episode never closed")
	}
	return rec
}

func TestFloodsEndpoints(t *testing.T) {
	eng, mu := loadedEngine(t)
	h := NewSnapshotter(mu, eng, nil).WithFlood(floodedRecorder(t)).Handler()

	code, body := get(t, h, "/api/floods")
	if code != http.StatusOK {
		t.Fatalf("/api/floods = %d: %s", code, body)
	}
	var list []floodSummary
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("list does not parse: %v", err)
	}
	if len(list) != 1 || list[0].ID != 1 || list[0].Phase != flood.PhaseClosed {
		t.Fatalf("list = %+v, want one closed episode", list)
	}

	code, body = get(t, h, "/api/floods/1/report")
	if code != http.StatusOK {
		t.Fatalf("/api/floods/1/report = %d: %s", code, body)
	}
	var rep flood.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("report does not parse into flood.Report: %v", err)
	}
	if rep.ID != 1 || rep.RawTotal == 0 || len(rep.Timeline) == 0 {
		t.Fatalf("report lost content: %+v", rep)
	}

	for path, want := range map[string]int{
		"/api/floods/99/report": http.StatusNotFound,
		"/api/floods/xx/report": http.StatusBadRequest,
		"/api/floods/1":         http.StatusNotFound,
	} {
		if code, _ := get(t, h, path); code != want {
			t.Errorf("%s = %d, want %d", path, code, want)
		}
	}
}

func TestFloodsAbsentWithoutRecorder(t *testing.T) {
	eng, mu := loadedEngine(t)
	h := NewSnapshotter(mu, eng, nil).Handler()
	if code, _ := get(t, h, "/api/floods"); code != http.StatusNotFound {
		t.Errorf("/api/floods without recorder = %d, want 404", code)
	}
}
