package status

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"skynet/internal/slo"
	"skynet/internal/tsdb"
)

// historyHandler builds a handler over a small populated store and an
// SLO engine driven into a burn.
func historyHandler(t *testing.T) http.Handler {
	t.Helper()
	db := tsdb.New(tsdb.Config{})
	for tick := uint64(0); tick < 200; tick++ {
		db.Append("skynet_active_incidents", tick, float64(tick%7))
		db.Append(tsdb.MetricTickDuration, tick, 0.5) // 5x the 0.1s target
	}
	rules := []slo.Rule{{Name: "tick-latency", Metric: tsdb.MetricTickDuration,
		Target: 0.1, FastWindow: 4, SlowWindow: 8, FastBurn: 1, SlowBurn: 1}}
	eng := slo.New(db, rules)
	for tick := uint64(0); tick < 200; tick++ {
		eng.Evaluate(tick)
	}
	return NewSnapshotter(&sync.Mutex{}, nil, nil).WithHistory(db).WithSLO(eng).Handler()
}

func TestQueryEndpoint(t *testing.T) {
	h := historyHandler(t)
	code, body := get(t, h, "/api/query?metric=skynet_active_incidents&from=10&to=19")
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, body)
	}
	var res tsdb.QueryResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Source != "raw" || len(res.Points) != 10 || res.Points[0].Tick != 10 {
		t.Fatalf("raw query = %+v", res)
	}
	// Downsampled read through the 10-tick tier.
	code, body = get(t, h, "/api/query?metric=skynet_active_incidents&step=10")
	if code != http.StatusOK {
		t.Fatalf("tier query: %d", code)
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Source != "10-tick" || len(res.Points) == 0 {
		t.Fatalf("tier query = %+v", res)
	}

	if code, _ := get(t, h, "/api/query"); code != http.StatusBadRequest {
		t.Errorf("missing metric: %d, want 400", code)
	}
	if code, _ := get(t, h, "/api/query?metric=skynet_active_incidents&from=x"); code != http.StatusBadRequest {
		t.Errorf("bad from: %d, want 400", code)
	}
	if code, _ := get(t, h, "/api/query?metric=no_such_series"); code != http.StatusNotFound {
		t.Errorf("unknown metric: %d, want 404", code)
	}
}

func TestSLOEndpoint(t *testing.T) {
	h := historyHandler(t)
	code, body := get(t, h, "/api/slo")
	if code != http.StatusOK {
		t.Fatalf("slo: %d %s", code, body)
	}
	var view sloView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if view.Firing != 1 || len(view.Rules) != 1 || !view.Rules[0].Firing {
		t.Fatalf("slo view = %+v, want the tick-latency rule firing", view)
	}
	if view.Tick != 199 {
		t.Errorf("view tick = %d, want 199 (the store horizon)", view.Tick)
	}
	if len(view.Events) == 0 || !view.Events[0].Firing {
		t.Fatalf("events = %+v, want the burn-start edge", view.Events)
	}
}
