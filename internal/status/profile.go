package status

import (
	"net/http"

	"skynet/internal/prof"
)

// WithProfiler mounts GET /api/profile serving the continuous profiler's
// state: the retained window list and the most recent per-stage CPU
// table. The collector is internally synchronized; the handler never
// takes the engine lock.
func (s *Snapshotter) WithProfiler(c *prof.Collector) *Snapshotter {
	s.profiler = c
	return s
}

// profileView is the /api/profile JSON shape.
type profileView struct {
	// Windows is the retained capture history, oldest first.
	Windows []prof.ProfileWindow `json:"windows"`
	// Stages is the most recent window's per-stage CPU table, highest
	// CPU first.
	Stages []prof.StageCPUSample `json:"stages,omitempty"`
	// Captures / Errors count clean and failed windows over the
	// collector's lifetime.
	Captures int64 `json:"captures"`
	Errors   int64 `json:"errors"`
}

func (s *Snapshotter) profileHandler(w http.ResponseWriter, r *http.Request) {
	view := profileView{Windows: s.profiler.Windows()}
	view.Captures, view.Errors = s.profiler.Counts()
	for i := len(view.Windows) - 1; i >= 0; i-- {
		if view.Windows[i].Err == "" {
			view.Stages = view.Windows[i].Stages
			break
		}
	}
	writeJSON(w, view)
}
