package status

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/core"
	"skynet/internal/hierarchy"
	"skynet/internal/preprocess"
	"skynet/internal/provenance"
	"skynet/internal/topology"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

// loadedEngine builds an engine with one incident.
func loadedEngine(t *testing.T) (*core.Engine, *sync.Mutex) {
	t.Helper()
	classifier, err := preprocess.BootstrapClassifier()
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(core.DefaultConfig(), nil, classifier, nil, nil)
	dev := hierarchy.MustNew("RG01", "CT01", "LS01", "ST01", "CL01", "dev-a")
	for i, typ := range []string{alert.TypePacketLoss, alert.TypeEndToEndICMP} {
		eng.Ingest(alert.Alert{
			Source: alert.SourcePing, Type: typ, Class: alert.ClassFailure,
			Time: epoch.Add(time.Duration(i) * time.Second), End: epoch.Add(time.Duration(i) * time.Second),
			Location: dev, Value: 0.4, Count: 1,
		})
	}
	eng.Tick(epoch.Add(30 * time.Second))
	if len(eng.Active()) == 0 {
		t.Fatal("setup: no incident")
	}
	return eng, &sync.Mutex{}
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

func TestHealthz(t *testing.T) {
	eng, mu := loadedEngine(t)
	h := NewSnapshotter(mu, eng, nil).Handler()
	code, body := get(t, h, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz: %d %q", code, body)
	}
}

func TestStats(t *testing.T) {
	eng, mu := loadedEngine(t)
	h := NewSnapshotter(mu, eng, nil).Handler()
	code, body := get(t, h, "/api/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var v StatsView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.RawIngested != 2 || v.ActiveIncidents != 1 {
		t.Errorf("stats = %+v", v)
	}
}

func TestIncidentList(t *testing.T) {
	eng, mu := loadedEngine(t)
	h := NewSnapshotter(mu, eng, nil).Handler()
	code, body := get(t, h, "/api/incidents")
	if code != http.StatusOK {
		t.Fatalf("incidents: %d", code)
	}
	var out []IncidentSummary
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !out[0].Active || out[0].AlertCount != 2 {
		t.Errorf("list = %+v", out)
	}
}

func TestIncidentDetail(t *testing.T) {
	eng, mu := loadedEngine(t)
	h := NewSnapshotter(mu, eng, nil).Handler()
	id := eng.Active()[0].ID
	code, body := get(t, h, "/api/incidents/"+itoa(id))
	if code != http.StatusOK {
		t.Fatalf("detail: %d %s", code, body)
	}
	var d IncidentDetail
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Report, "Failure alerts") {
		t.Error("detail missing Figure 6 report")
	}
	if !strings.Contains(d.LLMContext, "NETWORK INCIDENT") {
		t.Error("detail missing LLM context")
	}
}

func TestIncidentDetailErrors(t *testing.T) {
	eng, mu := loadedEngine(t)
	h := NewSnapshotter(mu, eng, nil).Handler()
	if code, _ := get(t, h, "/api/incidents/999"); code != http.StatusNotFound {
		t.Errorf("unknown incident: %d", code)
	}
	if code, _ := get(t, h, "/api/incidents/notanumber"); code != http.StatusBadRequest {
		t.Errorf("bad id: %d", code)
	}
}

func TestListenAndClose(t *testing.T) {
	eng, mu := loadedEngine(t)
	srv, err := Listen("127.0.0.1:0", NewSnapshotter(mu, eng, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("live healthz: %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Listen("256.1.1.1:-1", NewSnapshotter(mu, eng, nil), nil); err == nil {
		t.Error("bad address accepted")
	}
}

func itoa(i int) string { return strconv.Itoa(i) }

func TestHTMLIndex(t *testing.T) {
	eng, mu := loadedEngine(t)
	h := NewSnapshotter(mu, eng, nil).Handler()
	code, body := get(t, h, "/")
	if code != http.StatusOK {
		t.Fatalf("index: %d", code)
	}
	for _, want := range []string{"SkyNet — incidents", "Failure alerts", "/api/incidents/0"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
	if code, _ := get(t, h, "/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path: %d", code)
	}
}

// loadedEngineProv is loadedEngine with a full-detail lineage recorder
// attached before ingest.
func loadedEngineProv(t *testing.T) (*core.Engine, *provenance.Recorder, *sync.Mutex) {
	t.Helper()
	classifier, err := preprocess.BootstrapClassifier()
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(core.DefaultConfig(), nil, classifier, nil, nil)
	rec := provenance.New(provenance.Config{SampleEvery: 1})
	eng.EnableProvenance(rec)
	dev := hierarchy.MustNew("RG01", "CT01", "LS01", "ST01", "CL01", "dev-a")
	for i, typ := range []string{alert.TypePacketLoss, alert.TypeEndToEndICMP} {
		eng.Ingest(alert.Alert{
			Source: alert.SourcePing, Type: typ, Class: alert.ClassFailure,
			Time: epoch.Add(time.Duration(i) * time.Second), End: epoch.Add(time.Duration(i) * time.Second),
			Location: dev, Value: 0.4, Count: 1,
		})
	}
	eng.Tick(epoch.Add(30 * time.Second))
	if len(eng.Active()) == 0 {
		t.Fatal("setup: no incident")
	}
	return eng, rec, &sync.Mutex{}
}

func TestExplainEndpoint(t *testing.T) {
	eng, rec, mu := loadedEngineProv(t)
	h := NewSnapshotter(mu, eng, nil).WithProvenance(rec).Handler()
	id := eng.Active()[0].ID
	code, body := get(t, h, "/api/incidents/"+itoa(id)+"/explain")
	if code != http.StatusOK {
		t.Fatalf("explain: %d %s", code, body)
	}
	var ex provenance.Explain
	if err := json.Unmarshal([]byte(body), &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Incident != id {
		t.Errorf("explain incident = %d, want %d", ex.Incident, id)
	}
	if ex.Trigger == nil || ex.Trigger.Rule == "" {
		t.Errorf("explain trigger missing or empty: %+v", ex.Trigger)
	}
	if len(ex.Evidence) == 0 {
		t.Error("explain has no evidence streams")
	}
	if len(ex.Lineages) == 0 {
		t.Error("explain has no lineage samples at SampleEvery=1")
	}
	if code, _ := get(t, h, "/api/incidents/999/explain"); code != http.StatusNotFound {
		t.Errorf("unknown incident explain: %d", code)
	}
	if code, _ := get(t, h, "/api/incidents/notanumber/explain"); code != http.StatusBadRequest {
		t.Errorf("bad id explain: %d", code)
	}
}

func TestExplainEndpointWithoutRecorder(t *testing.T) {
	eng, mu := loadedEngine(t)
	h := NewSnapshotter(mu, eng, nil).Handler()
	id := eng.Active()[0].ID
	code, body := get(t, h, "/api/incidents/"+itoa(id)+"/explain")
	if code != http.StatusNotImplemented {
		t.Errorf("no-recorder explain: %d %s", code, body)
	}
	if !strings.Contains(body, "-provenance") {
		t.Errorf("degradation should point at the -provenance flag: %q", body)
	}
}

func TestBuildInfoEndpoint(t *testing.T) {
	eng, mu := loadedEngine(t)
	// Without build info the endpoint is simply absent.
	h := NewSnapshotter(mu, eng, nil).Handler()
	if code, _ := get(t, h, "/api/buildinfo"); code != http.StatusNotFound {
		t.Errorf("buildinfo without info: %d", code)
	}
	h2 := NewSnapshotter(mu, eng, nil).WithBuildInfo(BuildInfo{
		Version:   "test-1.0",
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		Workers:   3,
		Flags:     map[string]string{"provenance": "16"},
	}).Handler()
	code, body := get(t, h2, "/api/buildinfo")
	if code != http.StatusOK {
		t.Fatalf("buildinfo: %d %s", code, body)
	}
	var bi BuildInfo
	if err := json.Unmarshal([]byte(body), &bi); err != nil {
		t.Fatal(err)
	}
	if bi.Version != "test-1.0" || bi.GoVersion != runtime.Version() || bi.Workers != 3 {
		t.Errorf("buildinfo = %+v", bi)
	}
	if bi.Flags["provenance"] != "16" {
		t.Errorf("buildinfo flags = %v", bi.Flags)
	}
}

func TestGraphSVGEndpoint(t *testing.T) {
	eng, mu := loadedEngine(t)
	// Without a topology the endpoint degrades explicitly.
	h := NewSnapshotter(mu, eng, nil).Handler()
	if code, _ := get(t, h, "/api/incidents/0/graph.svg"); code != http.StatusNotImplemented {
		t.Errorf("no-topology graph: %d", code)
	}
	// With a topology it renders SVG for known incidents. The loaded
	// engine's incident is at a synthetic path outside this topology, so
	// the SVG degrades to the placeholder — but stays a valid document.
	topo := topology.MustGenerate(topology.SmallConfig())
	h2 := NewSnapshotter(mu, eng, nil).WithTopology(topo).Handler()
	id := eng.Active()[0].ID
	code, body := get(t, h2, "/api/incidents/"+itoa(id)+"/graph.svg")
	if code != http.StatusOK {
		t.Fatalf("graph: %d", code)
	}
	if !strings.HasPrefix(body, "<svg") {
		t.Errorf("not SVG: %.60q", body)
	}
	if code, _ := get(t, h2, "/api/incidents/999/graph.svg"); code != http.StatusNotFound {
		t.Errorf("unknown incident graph: %d", code)
	}
}
