package provenance_test

import (
	"strings"
	"testing"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/provenance"
	"skynet/internal/telemetry"
)

var t0 = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

func testAlert(typ string) alert.Alert {
	return alert.Alert{
		Source:   alert.SourcePing,
		Type:     typ,
		Time:     t0,
		Location: hierarchy.MustNew("RG01", "CT01", "LS01", "ST01", "CL01", "dev-a"),
	}
}

// TestLedgerResolvesEachBucket drives one lineage into every terminal
// bucket and checks the conservation identity plus the per-reason split.
func TestLedgerResolvesEachBucket(t *testing.T) {
	r := provenance.New(provenance.Config{SampleEvery: 1})
	a := testAlert("packet loss")

	l1 := r.Ingest(&a, false)
	l2 := r.Ingest(&a, true)
	l3 := r.Ingest(&a, false)
	l4 := r.Ingest(&a, false)
	l5 := r.Ingest(&a, false)
	if l1 != 1 || l2 != 2 || l5 != 5 {
		t.Fatalf("lineage IDs not sequential from 1: got %d %d ... %d", l1, l2, l5)
	}
	if got := r.InFlight(); got != 5 {
		t.Fatalf("in flight = %d before resolution, want 5", got)
	}

	r.Consolidated(l1, 0)
	r.Filtered(l2, provenance.FilterSporadic)
	r.Filtered(l3, provenance.FilterUnclassified)
	r.Expired(l4)
	r.Attributed(l5, 7)

	c := r.Counters()
	if c.Ingested != 5 || c.Split != 1 {
		t.Errorf("ingested=%d split=%d, want 5/1", c.Ingested, c.Split)
	}
	if c.Consolidated != 1 || c.Filtered != 2 || c.Expired != 1 || c.Attributed != 1 {
		t.Errorf("terminal buckets = %+v, want 1/2/1/1", c)
	}
	if c.Terminal() != c.Ingested {
		t.Errorf("Terminal()=%d != Ingested=%d", c.Terminal(), c.Ingested)
	}
	if r.InFlight() != 0 {
		t.Errorf("in flight = %d after full resolution, want 0", r.InFlight())
	}
	var byReason int64
	for _, n := range c.ByReason {
		byReason += n
	}
	if byReason != c.Filtered {
		t.Errorf("ByReason sums to %d, want Filtered=%d", byReason, c.Filtered)
	}
	if c.ByReason[provenance.FilterSporadic] != 1 || c.ByReason[provenance.FilterUnclassified] != 1 {
		t.Errorf("per-reason split wrong: %v", c.ByReason)
	}

	// Ring detail mirrors the resolutions at SampleEvery=1.
	for _, tc := range []struct {
		lid  uint64
		want provenance.State
	}{
		{l1, provenance.StateConsolidated},
		{l2, provenance.StateFiltered},
		{l4, provenance.StateExpired},
		{l5, provenance.StateAttributed},
	} {
		rec, ok := r.Lineage(tc.lid)
		if !ok {
			t.Fatalf("lineage %d missing from ring", tc.lid)
		}
		if rec.State != tc.want {
			t.Errorf("lineage %d state = %s, want %s", tc.lid, rec.State, tc.want)
		}
	}
	if rec, _ := r.Lineage(l5); rec.Incident != 7 {
		t.Errorf("attributed lineage incident = %d, want 7", rec.Incident)
	}
	if rec, _ := r.Lineage(l2); !rec.Split || rec.Reason != provenance.FilterSporadic {
		t.Errorf("split lineage record = %+v, want split+sporadic", rec)
	}
}

// TestSampling checks the 1-in-N detail decision is a pure function of the
// lineage ID while the counters stay exact.
func TestSampling(t *testing.T) {
	r := provenance.New(provenance.Config{SampleEvery: 4})
	a := testAlert("packet loss")
	for i := 0; i < 10; i++ {
		r.Ingest(&a, false)
	}
	for lid := uint64(1); lid <= 10; lid++ {
		_, ok := r.Lineage(lid)
		if want := lid%4 == 0; ok != want {
			t.Errorf("lineage %d sampled=%v, want %v", lid, ok, want)
		}
	}
	if c := r.Counters(); c.Ingested != 10 {
		t.Errorf("ingested=%d despite sampling, want 10", c.Ingested)
	}
	// Resolving unsampled lineages must not panic and still counts.
	r.Filtered(1, provenance.FilterStale)
	r.Consolidated(2, 0)
	if c := r.Counters(); c.Filtered != 1 || c.Consolidated != 1 {
		t.Errorf("unsampled resolutions not counted: %+v", c)
	}
}

// TestRingEviction fills a tiny detail ring past capacity: the oldest
// records are overwritten, the newest remain addressable.
func TestRingEviction(t *testing.T) {
	r := provenance.New(provenance.Config{SampleEvery: 1, RingCap: 4})
	a := testAlert("packet loss")
	for i := 0; i < 6; i++ {
		r.Ingest(&a, false)
	}
	for lid := uint64(1); lid <= 2; lid++ {
		if _, ok := r.Lineage(lid); ok {
			t.Errorf("lineage %d should have been evicted from a 4-slot ring", lid)
		}
	}
	for lid := uint64(3); lid <= 6; lid++ {
		if _, ok := r.Lineage(lid); !ok {
			t.Errorf("lineage %d missing; ring should retain the newest 4", lid)
		}
	}
	if c := r.Counters(); c.Ingested != 6 {
		t.Errorf("eviction touched the ledger: ingested=%d", c.Ingested)
	}
}

// TestEmitWindow pins the structured-ID→lineage handoff protocol: claimed
// exactly once, and stale handoffs vanish when a new window opens.
func TestEmitWindow(t *testing.T) {
	r := provenance.New(provenance.Config{SampleEvery: 1})
	a := testAlert("packet loss")
	lid := r.Ingest(&a, false)

	r.BeginEmitWindow()
	r.Emitted(42, lid)
	if got := r.TakeEmitted(42); got != lid {
		t.Fatalf("TakeEmitted = %d, want %d", got, lid)
	}
	if got := r.TakeEmitted(42); got != 0 {
		t.Fatalf("second TakeEmitted = %d, want 0 (exactly-once)", got)
	}
	if rec, _ := r.Lineage(lid); rec.StructuredID != 42 {
		t.Errorf("ring record structured ID = %d, want 42", rec.StructuredID)
	}

	r.Emitted(43, lid)
	r.BeginEmitWindow()
	if got := r.TakeEmitted(43); got != 0 {
		t.Fatalf("handoff survived a new emit window: got %d", got)
	}
}

// TestIncidentSamplesSurviveRingEviction is the explain-side guarantee:
// lineage detail attributed to an incident is copied onto the incident
// record, so later ring churn cannot lose the evidence.
func TestIncidentSamplesSurviveRingEviction(t *testing.T) {
	r := provenance.New(provenance.Config{SampleEvery: 1, RingCap: 4})
	a := testAlert("packet loss")
	lid := r.Ingest(&a, false)
	r.IncidentCreated(provenance.IncidentInfo{ID: 1, Root: "RG01", At: t0, Rule: "failure-only"})
	r.Attributed(lid, 1)

	// Churn the ring until the attributed lineage's slot is overwritten.
	for i := 0; i < 8; i++ {
		r.Ingest(&a, false)
	}
	if _, ok := r.Lineage(lid); ok {
		t.Fatal("test premise broken: lineage still in ring")
	}
	rec, ok := r.Incident(1)
	if !ok {
		t.Fatal("incident record missing")
	}
	if rec.Attributed != 1 || len(rec.Samples) != 1 {
		t.Fatalf("attributed=%d samples=%d, want 1/1", rec.Attributed, len(rec.Samples))
	}
	if s := rec.Samples[0]; s.Lineage != lid || s.State != provenance.StateAttributed || s.Incident != 1 {
		t.Errorf("copied sample = %+v", s)
	}
}

// TestIncidentSampleCapOverflow bounds the per-incident sample list.
func TestIncidentSampleCapOverflow(t *testing.T) {
	r := provenance.New(provenance.Config{SampleEvery: 1, LineagesPerIncident: 2})
	a := testAlert("packet loss")
	r.IncidentCreated(provenance.IncidentInfo{ID: 1, Root: "RG01", At: t0})
	for i := 0; i < 5; i++ {
		r.Attributed(r.Ingest(&a, false), 1)
	}
	rec, _ := r.Incident(1)
	if len(rec.Samples) != 2 || rec.Overflow != 3 || rec.Attributed != 5 {
		t.Errorf("samples=%d overflow=%d attributed=%d, want 2/3/5",
			len(rec.Samples), rec.Overflow, rec.Attributed)
	}
}

// TestIncidentRecordEviction: past the cap, the oldest *closed* record is
// evicted; open incidents are never dropped.
func TestIncidentRecordEviction(t *testing.T) {
	r := provenance.New(provenance.Config{IncidentCap: 2})
	r.IncidentCreated(provenance.IncidentInfo{ID: 1, Root: "a", At: t0})
	r.IncidentCreated(provenance.IncidentInfo{ID: 2, Root: "b", At: t0})
	r.IncidentClosed(1, t0.Add(time.Minute))
	r.IncidentCreated(provenance.IncidentInfo{ID: 3, Root: "c", At: t0})

	if _, ok := r.Incident(1); ok {
		t.Error("oldest closed record 1 should have been evicted")
	}
	for _, id := range []int{2, 3} {
		if _, ok := r.Incident(id); !ok {
			t.Errorf("record %d missing", id)
		}
	}
	if rec, _ := r.Incident(2); !rec.ClosedAt.IsZero() {
		t.Error("record 2 was never closed")
	}
}

// TestRegisterMetrics snapshots the /metrics surface and re-derives the
// conservation identity from the exported counters alone.
func TestRegisterMetrics(t *testing.T) {
	r := provenance.New(provenance.Config{SampleEvery: 1})
	reg := telemetry.New()
	r.RegisterMetrics(reg)

	a := testAlert("packet loss")
	r.Consolidated(r.Ingest(&a, false), 0)
	r.Filtered(r.Ingest(&a, false), provenance.FilterUncorroborated)
	r.Expired(r.Ingest(&a, false))
	r.Attributed(r.Ingest(&a, false), 1)
	r.Ingest(&a, false) // deliberately left in flight

	vals := map[string]float64{}
	for _, m := range reg.Snapshot() {
		vals[m.Name] = m.Value
	}
	if vals["skynet_lineage_ingested_total"] != 5 {
		t.Fatalf("ingested metric = %v, want 5", vals["skynet_lineage_ingested_total"])
	}
	terminal := vals["skynet_lineage_consolidated_total"] +
		vals["skynet_lineage_filtered_total"] +
		vals["skynet_lineage_expired_total"] +
		vals["skynet_lineage_attributed_total"]
	if terminal != 4 {
		t.Errorf("terminal metrics sum to %v, want 4", terminal)
	}
	if vals["skynet_lineage_in_flight"] != 1 {
		t.Errorf("in-flight gauge = %v, want 1", vals["skynet_lineage_in_flight"])
	}
	if vals["skynet_lineage_filtered_uncorroborated_total"] != 1 {
		t.Errorf("per-reason metric = %v, want 1", vals["skynet_lineage_filtered_uncorroborated_total"])
	}
	// Every reason has a metric, and they sum to the filtered total.
	var reasons float64
	for name, v := range vals {
		if strings.HasPrefix(name, "skynet_lineage_filtered_") && name != "skynet_lineage_filtered_total" {
			reasons += v
		}
	}
	if reasons != vals["skynet_lineage_filtered_total"] {
		t.Errorf("reason metrics sum to %v, want %v", reasons, vals["skynet_lineage_filtered_total"])
	}
}
