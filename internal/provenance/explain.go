package provenance

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"skynet/internal/alert"
	"skynet/internal/incident"
)

// EvidenceStream is one aggregated alert stream inside an incident — the
// (source, type, circuit set) at one location that the locator counted
// toward the trigger thresholds.
type EvidenceStream struct {
	Location   string    `json:"location"`
	Source     string    `json:"source"`
	Type       string    `json:"type"`
	Class      string    `json:"class"`
	CircuitSet string    `json:"circuit_set,omitempty"`
	Count      int       `json:"count"`
	Value      float64   `json:"value"`
	First      time.Time `json:"first"`
	Last       time.Time `json:"last"`
}

// Explain is the full provenance document for one incident: the trigger
// decision, the evidence streams, the score breakdown, and sampled raw
// alert journeys.
type Explain struct {
	Incident int    `json:"incident"`
	Root     string `json:"root"`
	Zoomed   string `json:"zoomed,omitempty"`
	Active   bool   `json:"active"`

	Severity float64   `json:"severity"`
	Start    time.Time `json:"start"`
	Update   time.Time `json:"update_time"`
	End      time.Time `json:"end,omitempty"`

	// Trigger is the locator-side record (threshold clause, component,
	// merges, attribution counts); nil when the recorder never saw this
	// incident's creation (attached mid-flight or evicted).
	Trigger *IncidentRecord `json:"trigger,omitempty"`
	// Score is the §4.3 evidence behind the latest severity.
	Score *ScoreRecord `json:"score,omitempty"`

	Evidence []EvidenceStream `json:"evidence"`

	// SampleEvery is the lineage sampling rate in force; Lineages holds
	// the sampled raw-alert journeys attributed to this incident (copied
	// at attribution time, so they survive detail-ring eviction).
	SampleEvery int             `json:"sample_every"`
	Lineages    []LineageRecord `json:"lineage_samples,omitempty"`
}

// Explain assembles the provenance document for an incident. The incident
// is read but not retained; call under the engine lock.
func (r *Recorder) Explain(in *incident.Incident) *Explain {
	ex := &Explain{
		Incident:    in.ID,
		Root:        in.Root.String(),
		Active:      in.Active(),
		Severity:    in.Severity,
		Start:       in.Start,
		Update:      in.UpdateTime,
		End:         in.End,
		SampleEvery: r.cfg.SampleEvery,
	}
	if !in.Zoomed.IsRoot() && in.Zoomed != in.Root {
		ex.Zoomed = in.Zoomed.String()
	}
	if rec, ok := r.Incident(in.ID); ok {
		ex.Trigger = &rec
		ex.Score = rec.Score
		ex.Lineages = rec.Samples
	}
	byLoc := in.Entries()
	for _, loc := range in.Locations() {
		entries := byLoc[loc]
		streams := make([]EvidenceStream, 0, len(entries))
		for _, e := range entries {
			a := &e.Alert
			streams = append(streams, EvidenceStream{
				Location:   loc.String(),
				Source:     a.Source.String(),
				Type:       a.Type,
				Class:      className(a.Class),
				CircuitSet: a.CircuitSet,
				Count:      a.Count,
				Value:      a.Value,
				First:      a.Time,
				Last:       a.End,
			})
		}
		sort.Slice(streams, func(i, j int) bool {
			if streams[i].Source != streams[j].Source {
				return streams[i].Source < streams[j].Source
			}
			if streams[i].Type != streams[j].Type {
				return streams[i].Type < streams[j].Type
			}
			return streams[i].CircuitSet < streams[j].CircuitSet
		})
		ex.Evidence = append(ex.Evidence, streams...)
	}
	return ex
}

func className(c alert.Class) string {
	switch c {
	case alert.ClassFailure:
		return "failure"
	case alert.ClassAbnormal:
		return "abnormal"
	case alert.ClassRootCause:
		return "root-cause"
	default:
		return "info"
	}
}

// Render formats the document as a human-readable tree for the CLI
// (`skynet-replay -explain`).
func (ex *Explain) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Incident %d  [%s]", ex.Incident, ex.Root)
	if ex.Zoomed != "" {
		fmt.Fprintf(&b, "  zoomed=%s", ex.Zoomed)
	}
	fmt.Fprintf(&b, "\n├─ window: %s → %s", ex.Start.Format(time.RFC3339), ex.Update.Format(time.RFC3339))
	if !ex.End.IsZero() {
		fmt.Fprintf(&b, "  (closed %s)", ex.End.Format(time.RFC3339))
	}
	b.WriteByte('\n')
	if tr := ex.Trigger; tr != nil {
		fmt.Fprintf(&b, "├─ trigger: %s under thresholds %s  (%d failure types, %d total, component of %d locations)\n",
			tr.Rule, tr.Thresholds, tr.FailureTypes, tr.AllTypes, tr.ComponentSize)
		if len(tr.MergedFrom) > 0 {
			fmt.Fprintf(&b, "│  └─ absorbed incidents %v\n", tr.MergedFrom)
		}
		fmt.Fprintf(&b, "├─ attribution: %d lineages fed this incident (%d sampled in detail)\n",
			tr.Attributed, len(tr.Samples))
	}
	if sc := ex.Score; sc != nil {
		fmt.Fprintf(&b, "├─ severity %.2f = impact %.2f × time factor %.2f  (Eq. 3, at %s)\n",
			sc.Severity, sc.Impact, sc.TimeFactor, sc.At.Format(time.TimeOnly))
		fmt.Fprintf(&b, "│  ├─ Eq. 2: R=%.4f  L=%.4f  ΔT=%.2f  U=%d  Sig(U)=%.4f  arg=%.4f\n",
			sc.R, sc.L, sc.DurationUnits, sc.ImportantCustomers, sc.Sigmoid, sc.TimeArg)
		for i, c := range sc.Circuits {
			branch := "├─"
			if i == len(sc.Circuits)-1 {
				branch = "└─"
			}
			fmt.Fprintf(&b, "│  %s Eq. 1 %s: (d=%.3f + l=%.3f) × g=%.3f × u=%d → %.2f\n",
				branch, c.Name, c.BreakRatio, c.SLAOverRatio, c.Importance, c.Customers, c.Contribution)
		}
	} else {
		fmt.Fprintf(&b, "├─ severity %.2f (no score record)\n", ex.Severity)
	}
	fmt.Fprintf(&b, "├─ evidence: %d alert streams\n", len(ex.Evidence))
	for i, ev := range ex.Evidence {
		branch := "│  ├─"
		if i == len(ex.Evidence)-1 {
			branch = "│  └─"
		}
		fmt.Fprintf(&b, "%s [%s] %s/%s (%s", branch, ev.Location, ev.Source, ev.Type, ev.Class)
		if ev.CircuitSet != "" {
			fmt.Fprintf(&b, ", cs=%s", ev.CircuitSet)
		}
		fmt.Fprintf(&b, ") ×%d value=%.3f  %s–%s\n",
			ev.Count, ev.Value, ev.First.Format(time.TimeOnly), ev.Last.Format(time.TimeOnly))
	}
	fmt.Fprintf(&b, "└─ lineage samples (1 in %d): %d retained\n", ex.SampleEvery, len(ex.Lineages))
	for i, lr := range ex.Lineages {
		branch := "   ├─"
		if i == len(ex.Lineages)-1 {
			branch = "   └─"
		}
		fmt.Fprintf(&b, "%s #%d %s/%s @%s", branch, lr.Lineage, lr.Source, lr.Type, lr.Location)
		if lr.Template != "" {
			fmt.Fprintf(&b, " template=%q", lr.Template)
		}
		if lr.Split {
			b.WriteString(" (link-split mirror)")
		}
		fmt.Fprintf(&b, " → %s", lr.State)
		if lr.StructuredID != 0 {
			fmt.Fprintf(&b, " as structured #%d", lr.StructuredID)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
