package provenance_test

import (
	"strings"
	"testing"
	"time"

	"skynet/internal/core"
	"skynet/internal/provenance"
	"skynet/internal/trace"
)

// replayTrace generates one small multi-scenario trace, shared across the
// conservation subtests.
func replayTrace(t *testing.T) *trace.Generated {
	t.Helper()
	opts := trace.DefaultGenerateOptions()
	opts.Scenarios = 2
	opts.Spacing = 6 * time.Minute
	opts.Window = 15 * time.Minute
	g, err := trace.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Alerts) == 0 {
		t.Fatal("generated trace is empty")
	}
	return g
}

// TestConservationOnReplay is the tentpole property: after a replay has
// quiesced (ReplayWithOptions ticks NodeTTL past the last alert, so every
// aggregate is swept and every main-tree stream expires), every ingested
// lineage sits in exactly one terminal bucket — no loss, no double count —
// at every worker count, and the ledger is identical across worker counts.
func TestConservationOnReplay(t *testing.T) {
	g := replayTrace(t)

	var ref provenance.Counters
	for i, workers := range []int{1, 2, 4, 8} {
		cfg := core.DefaultConfig()
		cfg.Workers = workers
		rec := provenance.New(provenance.Config{SampleEvery: 1})
		eng, err := trace.ReplayWithOptions(g.Alerts, g.Topo, cfg,
			trace.ReplayOptions{Provenance: rec})
		if err != nil {
			t.Fatal(err)
		}

		c := rec.Counters()
		if c.Ingested == 0 {
			t.Fatalf("workers=%d: nothing ingested", workers)
		}
		if c.Terminal() != c.Ingested {
			t.Errorf("workers=%d: conservation violated: ingested=%d != consolidated=%d + filtered=%d + expired=%d + attributed=%d (= %d)",
				workers, c.Ingested, c.Consolidated, c.Filtered, c.Expired, c.Attributed, c.Terminal())
		}
		if fl := rec.InFlight(); fl != 0 {
			t.Errorf("workers=%d: %d lineages in flight at quiescence", workers, fl)
		}
		var byReason int64
		for _, n := range c.ByReason {
			byReason += n
		}
		if byReason != c.Filtered {
			t.Errorf("workers=%d: ByReason sums to %d, want Filtered=%d", workers, byReason, c.Filtered)
		}
		// Lineages = raw alerts + link-split mirrors: the ledger must tie
		// out against the engine's own ingest counter.
		if c.Ingested-c.Split != int64(eng.RawIngested()) {
			t.Errorf("workers=%d: ingested-split=%d != engine raw ingested %d",
				workers, c.Ingested-c.Split, eng.RawIngested())
		}
		// Per-incident attribution counts must sum to the attributed total
		// (the trace is far below the incident record cap).
		var perIncident int64
		for _, in := range eng.AllIncidents() {
			if ir, ok := rec.Incident(in.ID); ok {
				perIncident += ir.Attributed
			}
		}
		if perIncident != c.Attributed {
			t.Errorf("workers=%d: incident records account for %d attributed lineages, ledger says %d",
				workers, perIncident, c.Attributed)
		}
		if len(eng.AllIncidents()) == 0 || c.Attributed == 0 {
			t.Errorf("workers=%d: trace produced no attributed incidents — property vacuous", workers)
		}

		if i == 0 {
			ref = c
		} else if c != ref {
			t.Errorf("workers=%d: ledger diverged from serial:\n  serial   %+v\n  parallel %+v", workers, ref, c)
		}
	}
}

// TestConservationAtDefaultSampling re-runs the ledger check with detail
// sampling at the production default: sampling bounds memory, never the
// counters.
func TestConservationAtDefaultSampling(t *testing.T) {
	g := replayTrace(t)
	rec := provenance.New(provenance.Config{}) // all defaults, SampleEvery=16
	if _, err := trace.ReplayWithOptions(g.Alerts, g.Topo, core.DefaultConfig(),
		trace.ReplayOptions{Provenance: rec}); err != nil {
		t.Fatal(err)
	}
	c := rec.Counters()
	if c.Terminal() != c.Ingested || rec.InFlight() != 0 {
		t.Errorf("conservation violated under sampling: %+v (in flight %d)", c, rec.InFlight())
	}
}

// TestExplainOnReplayedIncident walks the full explain surface for a real
// incident out of a replay: trigger clause, score evidence, evidence
// streams, and sampled lineage journeys.
func TestExplainOnReplayedIncident(t *testing.T) {
	g := replayTrace(t)
	rec := provenance.New(provenance.Config{SampleEvery: 1})
	eng, err := trace.ReplayWithOptions(g.Alerts, g.Topo, core.DefaultConfig(),
		trace.ReplayOptions{Provenance: rec})
	if err != nil {
		t.Fatal(err)
	}
	all := eng.AllIncidents()
	if len(all) == 0 {
		t.Fatal("replay produced no incidents")
	}
	in := all[0]
	ex := rec.Explain(in)
	if ex.Incident != in.ID || ex.Root != in.Root.String() {
		t.Fatalf("explain header mismatch: %+v", ex)
	}
	if ex.Trigger == nil {
		t.Fatal("explain has no trigger record")
	}
	if ex.Trigger.Rule == "" || ex.Trigger.Thresholds == "" {
		t.Errorf("trigger clause empty: %+v", ex.Trigger)
	}
	if ex.Score == nil {
		t.Error("explain has no score record")
	} else if ex.Score.Severity != in.Severity {
		t.Errorf("score record severity %v != incident severity %v", ex.Score.Severity, in.Severity)
	}
	if len(ex.Evidence) == 0 {
		t.Error("explain has no evidence streams")
	}
	if len(ex.Lineages) == 0 {
		t.Error("explain has no lineage samples at SampleEvery=1")
	}
	for _, lr := range ex.Lineages {
		if lr.State != provenance.StateAttributed || lr.Incident != in.ID {
			t.Errorf("sampled lineage %d: state=%s incident=%d, want attributed to %d",
				lr.Lineage, lr.State, lr.Incident, in.ID)
		}
	}

	out := ex.Render()
	for _, want := range []string{"Incident", "trigger:", "severity", "evidence:", "lineage samples"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}
