// Package provenance records the lineage of every raw alert through
// SkyNet's compression funnel — ingest, §4.1 consolidation, §4.2 incident
// generation, §4.3 scoring — so operators can audit why an incident fired
// and where any given alert went.
//
// The recorder tracks two kinds of state with very different costs:
//
//   - Conservation counters: every ingested alert resolves into exactly
//     one terminal bucket — consolidated (absorbed into an aggregate that
//     had already claimed the stream's head), filtered (dropped by a §4.1
//     rule), expired (reached the main alert tree but aged out before any
//     incident claimed it), or attributed (landed in an incident). These
//     are unconditional, atomic, and cheap; ingested must always equal
//     the sum of the terminals plus the in-flight gauge, which the
//     conservation property test drives to exact equality at quiescence.
//
//   - Lineage detail: a ring-buffered, sampled record per raw alert (the
//     matched FT-tree template, the consolidation decision, the incident
//     it fed) plus a bounded per-incident record of the trigger rule,
//     component, and score breakdown. Detail is for explanation, not
//     accounting; sampling and eviction never touch the counters.
//
// Thread model: the recorder is owned by the engine goroutine. Pipeline
// stages only call it from their serial sections (the parallel phases
// stage resolutions in single-owner scratch and merge serially), so no
// internal locking is needed except the atomic counters, which /metrics
// scrapes read without the engine lock.
package provenance

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"skynet/internal/alert"
	"skynet/internal/hierarchy"
	"skynet/internal/telemetry"
)

// State is where a lineage currently stands in the funnel.
type State uint8

const (
	// StatePending: ingested, not yet resolved to a terminal bucket.
	StatePending State = iota
	// StateConsolidated: absorbed into an existing aggregate (§4.1 rule 1);
	// the aggregate's head lineage carries the stream forward.
	StateConsolidated
	// StateFiltered: dropped by a preprocessor rule; see FilterReason.
	StateFiltered
	// StateExpired: emitted into the main alert tree but aged out past
	// NodeTTL before any incident claimed it (Algorithm 3).
	StateExpired
	// StateAttributed: reached an incident tree, either by feeding an
	// active incident or by being swept into a newly generated one.
	StateAttributed
)

// String returns the JSON/metric name of the state.
func (s State) String() string {
	switch s {
	case StateConsolidated:
		return "consolidated"
	case StateFiltered:
		return "filtered"
	case StateExpired:
		return "expired"
	case StateAttributed:
		return "attributed"
	default:
		return "pending"
	}
}

// MarshalText renders states as their names in JSON documents.
func (s State) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a state name, so explain documents round-trip.
func (s *State) UnmarshalText(b []byte) error {
	for c := StatePending; c <= StateAttributed; c++ {
		if c.String() == string(b) {
			*s = c
			return nil
		}
	}
	return fmt.Errorf("provenance: unknown state %q", b)
}

// FilterReason says which §4.1 rule dropped a filtered lineage.
type FilterReason uint8

const (
	// FilterUnclassified: a syslog line matching no FT-tree template.
	FilterUnclassified FilterReason = iota
	// FilterSporadic: low-rate packet loss that never persisted.
	FilterSporadic
	// FilterRelated: a traffic surge adjacent to an already-known surge.
	FilterRelated
	// FilterUncorroborated: a traffic drop with no cross-source evidence.
	FilterUncorroborated
	// FilterStale: an aggregate that aged out before passing any filter
	// (e.g. sporadic loss whose value later rose, drained leftovers).
	FilterStale

	numFilterReasons
)

// String returns the JSON/metric name of the reason.
func (r FilterReason) String() string {
	switch r {
	case FilterUnclassified:
		return "unclassified"
	case FilterSporadic:
		return "sporadic"
	case FilterRelated:
		return "related_surge"
	case FilterUncorroborated:
		return "uncorroborated"
	default:
		return "stale"
	}
}

// MarshalText renders reasons as their names in JSON documents.
func (r FilterReason) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// UnmarshalText parses a reason name, so explain documents round-trip.
func (r *FilterReason) UnmarshalText(b []byte) error {
	for c := FilterUnclassified; c < numFilterReasons; c++ {
		if c.String() == string(b) {
			*r = c
			return nil
		}
	}
	return fmt.Errorf("provenance: unknown filter reason %q", b)
}

// Config tunes the recorder's bounds.
type Config struct {
	// SampleEvery keeps detailed lineage records for one in N ingested
	// alerts (1 records everything; 0 means the default). Conservation
	// counters are exact regardless.
	SampleEvery int
	// RingCap bounds the sampled lineage detail ring (0 = default).
	RingCap int
	// IncidentCap bounds retained per-incident records; closed incidents
	// are evicted oldest-first past the cap (0 = default).
	IncidentCap int
	// LineagesPerIncident bounds the sampled lineage IDs kept on one
	// incident record (0 = default); overflow is counted, not stored.
	LineagesPerIncident int
}

// Defaults for Config zero fields.
const (
	DefaultSampleEvery         = 16
	DefaultRingCap             = 8192
	DefaultIncidentCap         = 1024
	DefaultLineagesPerIncident = 256
)

// LineageRecord is the sampled detail for one ingested raw alert.
type LineageRecord struct {
	// Lineage is the stable ID assigned at ingest, 1-based and strictly
	// increasing in ingest order.
	Lineage uint64 `json:"lineage"`
	// Split marks the mirrored half of a link-alert split (§4.1); splits
	// are ingested (and conserved) as their own lineage.
	Split bool `json:"split,omitempty"`

	Source string `json:"source"`
	Type   string `json:"type,omitempty"`
	// Location is stored as the structured path (no string is built on
	// the ingest hot path); it marshals as the usual "RG|CT|…" form.
	Location hierarchy.Path `json:"location"`
	Time     time.Time      `json:"time"`

	// Template is the FT-tree template (the classified type) that matched
	// a raw syslog line, recorded after phase-A classification.
	Template string `json:"template,omitempty"`

	State State `json:"state"`
	// Reason is set when State is StateFiltered.
	Reason FilterReason `json:"reason,omitempty"`
	// MergedInto is the head lineage of the aggregate that absorbed this
	// alert when State is StateConsolidated (0 when the head itself was
	// not sampled or predates the recorder).
	MergedInto uint64 `json:"merged_into,omitempty"`
	// StructuredID is the emitted structured alert's ID when this lineage
	// was the head of an emitted aggregate.
	StructuredID uint64 `json:"structured_id,omitempty"`
	// Incident is the incident the lineage fed when State is
	// StateAttributed.
	Incident int `json:"incident,omitempty"`
}

// ScoreRecord is the §4.3 evidence behind one severity number: every
// Table 3 symbol feeding Equations 1–3.
type ScoreRecord struct {
	At     time.Time `json:"at"`
	Zoomed string    `json:"zoomed,omitempty"`

	Severity   float64 `json:"severity"`
	Impact     float64 `json:"impact"`
	TimeFactor float64 `json:"time_factor"`

	// Eq. 2 inputs.
	R                  float64 `json:"r"`
	L                  float64 `json:"l"`
	DurationUnits      float64 `json:"duration_units"`
	ImportantCustomers int     `json:"important_customers"`
	Sigmoid            float64 `json:"sigmoid"`
	TimeArg            float64 `json:"time_arg"`

	// Eq. 1 per-circuit-set terms, serialized from the evaluator's
	// Breakdown (Name, BreakRatio d_i, SLAOverRatio l_i, Importance g_i,
	// Customers u_i, Contribution).
	Circuits []CircuitTerm `json:"circuits,omitempty"`
}

// CircuitTerm is one Eq. 1 term, mirrored from evaluator.CircuitImpact so
// the provenance layer has a JSON-tagged, dependency-free shape.
type CircuitTerm struct {
	Name         string  `json:"name"`
	BreakRatio   float64 `json:"break_ratio"`
	SLAOverRatio float64 `json:"sla_over_ratio"`
	Importance   float64 `json:"importance"`
	Customers    int     `json:"customers"`
	Contribution float64 `json:"contribution"`
}

// IncidentInfo is what the locator knows at incident-generation time.
type IncidentInfo struct {
	ID   int
	Root string
	At   time.Time
	// Rule is the human-readable threshold clause that fired (Figure 9:
	// failure-only, combo, or any).
	Rule string
	// Thresholds is the full A/B+C/D setting in force.
	Thresholds   string
	FailureTypes int
	AllTypes     int
	// Component is the connected alerting area (truncated to the record
	// bound); ComponentSize is its true size.
	Component     []string
	ComponentSize int
	MergedFrom    []int
}

// IncidentRecord is the bounded provenance of one incident: why it
// fired, what fed it, and the evidence behind its latest score.
type IncidentRecord struct {
	ID            int       `json:"id"`
	Root          string    `json:"root"`
	CreatedAt     time.Time `json:"created_at"`
	Rule          string    `json:"rule"`
	Thresholds    string    `json:"thresholds"`
	FailureTypes  int       `json:"failure_types"`
	AllTypes      int       `json:"all_types"`
	Component     []string  `json:"component,omitempty"`
	ComponentSize int       `json:"component_size"`
	MergedFrom    []int     `json:"merged_from,omitempty"`
	ClosedAt      time.Time `json:"closed_at,omitempty"`
	// Episode is the flood episode the incident was attributed to, 0
	// when it was created outside any detected flood — the join key
	// shared with metric labels, span ring entries, and flood reports.
	Episode uint64 `json:"episode,omitempty"`

	// Attributed counts every lineage resolved to this incident; Samples
	// holds copies of the sampled subset's detail records (copied at
	// attribution time so ring eviction cannot lose them), capped at
	// LineagesPerIncident.
	Attributed int64           `json:"attributed"`
	Samples    []LineageRecord `json:"lineage_samples,omitempty"`
	// Overflow counts sampled lineages dropped past the cap.
	Overflow int `json:"sampled_overflow,omitempty"`

	Score *ScoreRecord `json:"score,omitempty"`
}

// Counters is an atomic snapshot of the conservation ledger.
type Counters struct {
	Ingested     int64 `json:"ingested"`
	Split        int64 `json:"split"`
	Consolidated int64 `json:"consolidated"`
	Filtered     int64 `json:"filtered"`
	Expired      int64 `json:"expired"`
	Attributed   int64 `json:"attributed"`
	// ByReason breaks Filtered down per §4.1 rule; entries sum to
	// Filtered. Indexed by FilterReason.
	ByReason [numFilterReasons]int64 `json:"-"`
}

// Terminal is Consolidated+Filtered+Expired+Attributed — everything that
// has left the funnel. Conservation demands Ingested == Terminal once the
// pipeline is quiescent.
func (c Counters) Terminal() int64 {
	return c.Consolidated + c.Filtered + c.Expired + c.Attributed
}

// Recorder is the lineage recorder. One per engine; see the package
// comment for the thread model.
type Recorder struct {
	cfg Config

	// Conservation ledger (atomic: scraped without the engine lock).
	ingested     atomic.Int64
	split        atomic.Int64
	consolidated atomic.Int64
	filtered     atomic.Int64
	expired      atomic.Int64
	attributed   atomic.Int64
	byReason     [numFilterReasons]atomic.Int64

	nextLineage uint64

	// emitted maps a structured alert's ID to the head lineage it carries,
	// for the one hop between preprocessor emission and locator insertion.
	// Cleared at the start of every preprocessor Tick.
	emitted map[uint64]uint64

	// ring holds the sampled lineage detail, direct-mapped: sampled
	// lineage IDs are the arithmetic sequence SampleEvery·k, so slot
	// (lid/SampleEvery) mod RingCap is collision-free over any RingCap
	// consecutive samples and needs no index map. A slot whose stored
	// Lineage differs from the probe was evicted by a newer sample.
	ring []LineageRecord

	// incidents holds bounded per-incident records; order tracks
	// insertion for oldest-closed-first eviction.
	incidents map[int]*IncidentRecord
	order     []int

	// Hot-path fast paths, precomputed in New: when SampleEvery and
	// RingCap are powers of two (the defaults are) the per-alert
	// sample/slot math is a mask and shift instead of div/mod.
	sampleMask  uint64 // SampleEvery-1, or 0 when not a power of two
	sampleShift uint   // log2(SampleEvery) when sampleMask is set
	slotMask    uint64 // RingCap-1, or 0 when not a power of two
}

// New builds a recorder, applying defaults for zero Config fields.
func New(cfg Config) *Recorder {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.RingCap <= 0 {
		cfg.RingCap = DefaultRingCap
	}
	if cfg.IncidentCap <= 0 {
		cfg.IncidentCap = DefaultIncidentCap
	}
	if cfg.LineagesPerIncident <= 0 {
		cfg.LineagesPerIncident = DefaultLineagesPerIncident
	}
	r := &Recorder{
		cfg:       cfg,
		emitted:   make(map[uint64]uint64),
		ring:      make([]LineageRecord, cfg.RingCap),
		incidents: make(map[int]*IncidentRecord),
	}
	if se := uint64(cfg.SampleEvery); se&(se-1) == 0 {
		r.sampleMask = se - 1
		for se > 1 {
			se >>= 1
			r.sampleShift++
		}
	}
	if rc := uint64(cfg.RingCap); rc&(rc-1) == 0 {
		r.slotMask = rc - 1
	}
	return r
}

// SampleEvery reports the effective sampling rate.
func (r *Recorder) SampleEvery() int { return r.cfg.SampleEvery }

// sampled reports whether a lineage keeps ring detail. The decision is a
// pure function of the lineage ID, which is assigned serially in ingest
// order — so the sampled set is identical at every worker count.
func (r *Recorder) sampled(lid uint64) bool {
	if r.cfg.SampleEvery <= 1 {
		return true
	}
	if r.sampleMask != 0 {
		return lid&r.sampleMask == 0
	}
	return lid%uint64(r.cfg.SampleEvery) == 0
}

// slot is the direct-mapped ring position of a sampled lineage.
func (r *Recorder) slot(lid uint64) int {
	var idx uint64
	if r.sampleMask != 0 || r.cfg.SampleEvery <= 1 {
		idx = lid >> r.sampleShift
	} else {
		idx = lid / uint64(r.cfg.SampleEvery)
	}
	if r.slotMask != 0 {
		return int(idx & r.slotMask)
	}
	return int(idx % uint64(len(r.ring)))
}

// record returns the ring slot of a sampled lineage, or nil when the
// lineage was unsampled or its slot has been overwritten.
func (r *Recorder) record(lid uint64) *LineageRecord {
	if lid == 0 || !r.sampled(lid) {
		return nil
	}
	rec := &r.ring[r.slot(lid)]
	if rec.Lineage != lid {
		return nil
	}
	return rec
}

// Ingest assigns the next lineage ID to a raw alert entering the
// preprocessor. split marks the mirrored half of a link-alert split.
func (r *Recorder) Ingest(a *alert.Alert, split bool) uint64 {
	r.nextLineage++
	lid := r.nextLineage
	r.ingested.Add(1)
	if split {
		r.split.Add(1)
	}
	if !r.sampled(lid) {
		return lid
	}
	// Direct-mapped write; the previous occupant (the sample RingCap
	// generations older) is evicted by overwrite.
	r.ring[r.slot(lid)] = LineageRecord{
		Lineage:  lid,
		Split:    split,
		Source:   a.Source.String(),
		Type:     a.Type,
		Location: a.Location,
		Time:     a.Time,
		State:    StatePending,
	}
	return lid
}

// SetTemplate records the FT-tree template (classified type) that matched
// a sampled syslog lineage.
func (r *Recorder) SetTemplate(lid uint64, template string) {
	if rec := r.record(lid); rec != nil {
		rec.Template = template
		if rec.Type == "" {
			rec.Type = template
		}
	}
}

// Consolidated resolves a lineage absorbed into an existing aggregate;
// head is the aggregate's head lineage (may be 0).
func (r *Recorder) Consolidated(lid, head uint64) {
	r.consolidated.Add(1)
	if rec := r.record(lid); rec != nil {
		rec.State = StateConsolidated
		rec.MergedInto = head
	}
}

// Pair stages one consolidation resolution: Lid was absorbed into the
// aggregate whose head lineage is Head.
type Pair struct{ Lid, Head uint64 }

// ConsolidatedAll resolves a batch of absorbed lineages with a single
// ledger update — the preprocessor's per-shard flush calls this once per
// tick instead of hitting the atomic counter per alert.
func (r *Recorder) ConsolidatedAll(pairs []Pair) {
	r.consolidated.Add(int64(len(pairs)))
	for _, p := range pairs {
		if rec := r.record(p.Lid); rec != nil {
			rec.State = StateConsolidated
			rec.MergedInto = p.Head
		}
	}
}

// Filtered resolves a lineage dropped by a §4.1 rule.
func (r *Recorder) Filtered(lid uint64, reason FilterReason) {
	r.filtered.Add(1)
	r.byReason[reason].Add(1)
	if rec := r.record(lid); rec != nil {
		rec.State = StateFiltered
		rec.Reason = reason
	}
}

// Expired resolves a lineage whose main-tree stream aged out past NodeTTL
// without joining any incident.
func (r *Recorder) Expired(lid uint64) {
	r.expired.Add(1)
	if rec := r.record(lid); rec != nil {
		rec.State = StateExpired
	}
}

// Attributed resolves a lineage into an incident tree.
func (r *Recorder) Attributed(lid uint64, incidentID int) {
	r.attributed.Add(1)
	in := r.incidents[incidentID]
	if in != nil {
		in.Attributed++
	}
	rec := r.record(lid)
	if rec != nil {
		rec.State = StateAttributed
		rec.Incident = incidentID
	}
	if in == nil || rec == nil {
		return
	}
	if len(in.Samples) < r.cfg.LineagesPerIncident {
		in.Samples = append(in.Samples, *rec)
	} else {
		in.Overflow++
	}
}

// BeginEmitWindow opens a fresh emission window: structured-ID→lineage
// handoffs from the previous tick are gone (their streams were either
// consumed by the locator or never left the preprocessor).
func (r *Recorder) BeginEmitWindow() {
	if len(r.emitted) > 0 {
		clear(r.emitted)
	}
}

// Emitted records that structured alert structID carries head lineage
// lid out of the preprocessor.
func (r *Recorder) Emitted(structID, lid uint64) {
	r.emitted[structID] = lid
	if rec := r.record(lid); rec != nil {
		rec.StructuredID = structID
	}
}

// TakeEmitted claims the lineage carried by a structured alert, zeroing
// it so the handoff happens exactly once.
func (r *Recorder) TakeEmitted(structID uint64) uint64 {
	lid, ok := r.emitted[structID]
	if !ok {
		return 0
	}
	delete(r.emitted, structID)
	return lid
}

// IncidentCreated opens a provenance record for a newly generated
// incident, evicting the oldest closed record past the cap.
func (r *Recorder) IncidentCreated(info IncidentInfo) {
	rec := &IncidentRecord{
		ID:            info.ID,
		Root:          info.Root,
		CreatedAt:     info.At,
		Rule:          info.Rule,
		Thresholds:    info.Thresholds,
		FailureTypes:  info.FailureTypes,
		AllTypes:      info.AllTypes,
		Component:     info.Component,
		ComponentSize: info.ComponentSize,
		MergedFrom:    info.MergedFrom,
	}
	r.incidents[info.ID] = rec
	r.order = append(r.order, info.ID)
	if len(r.incidents) <= r.cfg.IncidentCap {
		return
	}
	for i, id := range r.order {
		in, ok := r.incidents[id]
		if !ok {
			continue
		}
		if !in.ClosedAt.IsZero() {
			delete(r.incidents, id)
			r.order = append(r.order[:i:i], r.order[i+1:]...)
			return
		}
	}
}

// SetEpisode attributes an incident to a flood episode.
func (r *Recorder) SetEpisode(id int, episode uint64) {
	if in, ok := r.incidents[id]; ok {
		in.Episode = episode
	}
}

// IncidentClosed stamps the close time on an incident's record.
func (r *Recorder) IncidentClosed(id int, at time.Time) {
	if in, ok := r.incidents[id]; ok {
		in.ClosedAt = at
	}
}

// RecordScore stores the latest §4.3 evidence on an incident's record.
func (r *Recorder) RecordScore(id int, s *ScoreRecord) {
	if in, ok := r.incidents[id]; ok {
		in.Score = s
	}
}

// Incident returns a copy of one incident's provenance record.
func (r *Recorder) Incident(id int) (IncidentRecord, bool) {
	in, ok := r.incidents[id]
	if !ok {
		return IncidentRecord{}, false
	}
	cp := *in
	cp.Samples = append([]LineageRecord(nil), in.Samples...)
	sort.Slice(cp.Samples, func(i, j int) bool { return cp.Samples[i].Lineage < cp.Samples[j].Lineage })
	return cp, true
}

// Lineage returns a copy of one sampled lineage's ring record.
func (r *Recorder) Lineage(lid uint64) (LineageRecord, bool) {
	rec := r.record(lid)
	if rec == nil {
		return LineageRecord{}, false
	}
	return *rec, true
}

// Counters snapshots the conservation ledger.
func (r *Recorder) Counters() Counters {
	var c Counters
	c.Ingested = r.ingested.Load()
	c.Split = r.split.Load()
	c.Consolidated = r.consolidated.Load()
	c.Filtered = r.filtered.Load()
	c.Expired = r.expired.Load()
	c.Attributed = r.attributed.Load()
	for i := range c.ByReason {
		c.ByReason[i] = r.byReason[i].Load()
	}
	return c
}

// InFlight reports lineages ingested but not yet terminal. Zero once the
// pipeline is quiescent (all aggregates swept, all streams expired).
func (r *Recorder) InFlight() int64 {
	c := r.Counters()
	return c.Ingested - c.Terminal()
}

// RegisterMetrics exposes the conservation ledger on a telemetry
// registry. The lineage counters must satisfy, at quiescence:
//
//	skynet_lineage_ingested_total == consolidated + filtered + expired + attributed
func (r *Recorder) RegisterMetrics(reg *telemetry.Registry) {
	load := func(c *atomic.Int64) func() float64 {
		return func() float64 { return float64(c.Load()) }
	}
	reg.CounterFunc("skynet_lineage_ingested_total",
		"Lineages ingested (raw alerts plus link-split mirrors).",
		load(&r.ingested))
	reg.CounterFunc("skynet_lineage_split_total",
		"Mirrored lineages created by the link-alert split (§4.1).",
		load(&r.split))
	reg.CounterFunc("skynet_lineage_consolidated_total",
		"Lineages absorbed into an existing aggregate (consolidation rule 1).",
		load(&r.consolidated))
	reg.CounterFunc("skynet_lineage_filtered_total",
		"Lineages dropped by a §4.1 filter rule.",
		load(&r.filtered))
	reg.CounterFunc("skynet_lineage_expired_total",
		"Lineages expired from the main alert tree unclaimed (Algorithm 3).",
		load(&r.expired))
	reg.CounterFunc("skynet_lineage_attributed_total",
		"Lineages attributed to an incident tree.",
		load(&r.attributed))
	reg.GaugeFunc("skynet_lineage_in_flight",
		"Lineages ingested but not yet resolved to a terminal state.",
		func() float64 { return float64(r.InFlight()) })
	for reason := FilterUnclassified; reason < numFilterReasons; reason++ {
		reg.CounterFunc("skynet_lineage_filtered_"+reason.String()+"_total",
			"Lineages filtered by the "+reason.String()+" rule.",
			load(&r.byReason[reason]))
	}
}
