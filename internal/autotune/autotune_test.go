package autotune

import (
	"testing"
	"time"

	"skynet/internal/locator"
	"skynet/internal/monitors"
	"skynet/internal/topology"
)

func buildTestCorpus(t *testing.T, n int) (*topology.Topology, []LabeledTrace) {
	t.Helper()
	topo := topology.MustGenerate(topology.SmallConfig())
	mon := monitors.DefaultConfig()
	mon.NoisePerHour = 0
	corpus, err := BuildCorpus(topo, mon, n, 6*time.Minute, 1)
	if err != nil {
		t.Fatal(err)
	}
	return topo, corpus
}

func TestSweepSpaceShape(t *testing.T) {
	space := DefaultConfig().space()
	if len(space) < 50 {
		t.Fatalf("space too small: %d", len(space))
	}
	seen := map[locator.Thresholds]bool{}
	for _, th := range space {
		if seen[th] {
			t.Fatalf("duplicate candidate %v", th)
		}
		seen[th] = true
		if th.FailureOnly == 0 && th.ComboFailure == 0 && th.AnyAlerts == 0 {
			t.Fatal("never-firing candidate included")
		}
		if (th.ComboFailure == 0) != (th.ComboOther == 0) {
			t.Fatalf("half-disabled combo %v included", th)
		}
	}
	// The Figure 9 settings must all be inside the default space.
	for _, s := range []string{"2/1+2/5", "0/1+2/5", "2/0+0/5", "2/1+2/0", "1/1+2/5", "2/1+2/4", "2/1+1/5", "2/1+3/5", "2/1+2/6"} {
		th, err := locator.ParseThresholds(s)
		if err != nil {
			t.Fatal(err)
		}
		if !seen[th] {
			t.Errorf("Figure 9 setting %s outside default sweep space", s)
		}
	}
}

func TestTuneSelectsZeroFN(t *testing.T) {
	topo, corpus := buildTestCorpus(t, 4)
	cfg := DefaultConfig()
	// Shrink the space for test speed: sweep around the production point.
	cfg.MaxFailureOnly, cfg.MaxComboFail, cfg.MaxComboOther, cfg.MaxAny = 3, 1, 2, 6
	res, err := Tune(cfg, topo, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ZeroFN {
		t.Fatalf("no zero-FN candidate found; best %v FN=%d",
			res.Best.Thresholds, res.Best.Outcome.FalseNegatives)
	}
	if res.Best.Outcome.FalseNegatives != 0 {
		t.Error("best candidate has false negatives")
	}
	// Ordering invariant: best first.
	for i := 1; i < len(res.Candidates); i++ {
		if less(res.Candidates[i], res.Candidates[i-1]) {
			t.Fatal("candidates not sorted by selection criterion")
		}
	}
}

func TestTuneErrors(t *testing.T) {
	topo := topology.MustGenerate(topology.SmallConfig())
	if _, err := Tune(DefaultConfig(), topo, nil); err == nil {
		t.Error("empty corpus accepted")
	}
	cfg := DefaultConfig()
	cfg.MaxFailureOnly, cfg.MaxComboFail, cfg.MaxComboOther, cfg.MaxAny = 0, 0, 0, 0
	_, corpus := buildTestCorpus(t, 1)
	if _, err := Tune(cfg, topo, corpus); err == nil {
		t.Error("empty space accepted")
	}
}

func TestStrictnessOrdering(t *testing.T) {
	loose := locator.Thresholds{FailureOnly: 1, ComboFailure: 1, ComboOther: 1, AnyAlerts: 3}
	tight := locator.Thresholds{FailureOnly: 3, ComboFailure: 2, ComboOther: 3, AnyAlerts: 7}
	disabled := locator.Thresholds{FailureOnly: 2}
	if strictness(tight) <= strictness(loose) {
		t.Error("tight should be stricter than loose")
	}
	if strictness(disabled) <= strictness(tight) {
		t.Error("disabled clauses should count as maximally strict")
	}
}
