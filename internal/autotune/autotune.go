// Package autotune implements the paper's "better thresholds" future work
// (§9): instead of hand-picking the incident-generation thresholds from
// operator experience, sweep the threshold space over a labeled corpus and
// select the setting that — like the production choice in §6.3 — achieves
// zero false negatives with the fewest false positives.
//
// The corpus is raw-alert traces with scenario ground truth, the same
// material the Figure 9 experiment replays; the tuner is the programmatic
// version of the manual tuning the paper describes accumulating "with the
// accumulation of more experiential data".
package autotune

import (
	"fmt"
	"sort"
	"time"

	"skynet/internal/alert"
	"skynet/internal/core"
	"skynet/internal/locator"
	"skynet/internal/metrics"
	"skynet/internal/monitors"
	"skynet/internal/netsim"
	"skynet/internal/scenario"
	"skynet/internal/topology"
	"skynet/internal/trace"
)

// LabeledTrace pairs a raw alert trace with its ground-truth scenario.
type LabeledTrace struct {
	Raw      []alert.Alert
	Scenario scenario.Scenario
}

// Candidate is one evaluated threshold setting.
type Candidate struct {
	Thresholds locator.Thresholds
	Outcome    metrics.Outcome
}

// FPRatio is the candidate's false-positive ratio.
func (c Candidate) FPRatio() float64 { return c.Outcome.FPRatio() }

// FNRatio is the candidate's false-negative ratio.
func (c Candidate) FNRatio() float64 { return c.Outcome.FNRatio() }

// Config bounds the sweep space. Zero value is unusable; use
// DefaultConfig.
type Config struct {
	// MaxFailureOnly, MaxCombo and MaxAny bound each threshold clause.
	MaxFailureOnly int
	MaxComboFail   int
	MaxComboOther  int
	MaxAny         int
	// Tick is the replay cadence.
	Tick time.Duration
	// Engine provides the non-locator pipeline configuration.
	Engine core.Config
}

// DefaultConfig sweeps a space that includes every Figure 9 setting.
func DefaultConfig() Config {
	return Config{
		MaxFailureOnly: 3,
		MaxComboFail:   2,
		MaxComboOther:  3,
		MaxAny:         7,
		Tick:           10 * time.Second,
		Engine:         core.DefaultConfig(),
	}
}

// Result is the sweep outcome.
type Result struct {
	// Best is the selected setting: zero FN, minimum FP, ties broken by
	// stricter (higher) thresholds.
	Best Candidate
	// Candidates is every evaluated setting, best first.
	Candidates []Candidate
	// ZeroFN reports whether any candidate achieved zero false negatives.
	ZeroFN bool
}

// Tune sweeps the threshold space over the corpus and selects the best
// candidate by the paper's criterion.
func Tune(cfg Config, topo *topology.Topology, corpus []LabeledTrace) (*Result, error) {
	if len(corpus) == 0 {
		return nil, fmt.Errorf("autotune: empty corpus")
	}
	space := cfg.space()
	if len(space) == 0 {
		return nil, fmt.Errorf("autotune: empty sweep space")
	}
	res := &Result{}
	for _, th := range space {
		engCfg := cfg.Engine
		engCfg.EnableSOP = false
		engCfg.Locator.Thresholds = th
		var outs []metrics.Outcome
		for i := range corpus {
			eng, err := trace.Replay(corpus[i].Raw, topo, engCfg, cfg.Tick)
			if err != nil {
				return nil, fmt.Errorf("autotune: replay %d under %v: %w", i, th, err)
			}
			outs = append(outs, metrics.Evaluate(eng.AllIncidents(),
				[]scenario.Scenario{corpus[i].Scenario}))
		}
		res.Candidates = append(res.Candidates, Candidate{Thresholds: th, Outcome: metrics.Merge(outs...)})
	}
	sort.SliceStable(res.Candidates, func(i, j int) bool { return less(res.Candidates[i], res.Candidates[j]) })
	res.Best = res.Candidates[0]
	res.ZeroFN = res.Best.Outcome.FalseNegatives == 0
	return res, nil
}

// less orders candidates: zero-FN first, then fewer FN, then fewer FP,
// then stricter thresholds (harder to trip spuriously in the future).
func less(a, b Candidate) bool {
	if a.Outcome.FalseNegatives != b.Outcome.FalseNegatives {
		return a.Outcome.FalseNegatives < b.Outcome.FalseNegatives
	}
	if a.FPRatio() != b.FPRatio() {
		return a.FPRatio() < b.FPRatio()
	}
	return strictness(a.Thresholds) > strictness(b.Thresholds)
}

// strictness orders settings by how hard they are to trip.
func strictness(t locator.Thresholds) int {
	s := 0
	if t.FailureOnly > 0 {
		s += t.FailureOnly
	} else {
		s += 100 // disabled clause can never trip: maximally strict
	}
	if t.ComboFailure > 0 && t.ComboOther > 0 {
		s += t.ComboFailure + t.ComboOther
	} else {
		s += 100
	}
	if t.AnyAlerts > 0 {
		s += t.AnyAlerts
	} else {
		s += 100
	}
	return s
}

// space enumerates the candidate settings. Clause value 0 (disabled) is
// included for the failure-only and any clauses, mirroring Figure 9's
// disabled variants.
func (cfg Config) space() []locator.Thresholds {
	var out []locator.Thresholds
	for a := 0; a <= cfg.MaxFailureOnly; a++ {
		for b := 0; b <= cfg.MaxComboFail; b++ {
			for c := 0; c <= cfg.MaxComboOther; c++ {
				if (b == 0) != (c == 0) {
					continue // half-disabled combo is meaningless
				}
				for d := 0; d <= cfg.MaxAny; d++ {
					th := locator.Thresholds{FailureOnly: a, ComboFailure: b, ComboOther: c, AnyAlerts: d}
					if a == 0 && b == 0 && d == 0 {
						continue // never fires
					}
					out = append(out, th)
				}
			}
		}
	}
	return out
}

// BuildCorpus generates a labeled corpus of n single-scenario traces over
// the topology — the tuner's training material.
func BuildCorpus(topo *topology.Topology, monCfg monitors.Config, n int,
	window time.Duration, seed int64) ([]LabeledTrace, error) {
	gen := scenario.NewGenerator(topo, seed)
	start := time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)
	out := make([]LabeledTrace, 0, n)
	for i := 0; i < n; i++ {
		sc := gen.Random(gen.DrawCategory(), start.Add(90*time.Second))
		sim := netsim.New(topo, seed+int64(i))
		if err := sc.Inject(sim); err != nil {
			return nil, err
		}
		cfg := monCfg
		cfg.Seed = seed + int64(i)
		fleet := monitors.NewFleet(topo, cfg)
		raw, err := fleet.Run(sim, start, start.Add(window), cfg.PingInterval)
		if err != nil {
			return nil, err
		}
		out = append(out, LabeledTrace{Raw: raw, Scenario: sc})
	}
	return out, nil
}
