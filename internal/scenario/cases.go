package scenario

import (
	"fmt"
	"time"

	"skynet/internal/hierarchy"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

// Named scenarios reproducing the paper's case studies.

// FiberCutSevere reproduces the §2.2 war story: half of the cables serving
// as the Internet entry point of one data center fail simultaneously. The
// observable symptoms are congestion loss on the surviving entries, link
// and interface down syslogs, sharp SNMP traffic declines, and out-of-band
// unreachability — an alert flood whose root cause (the cut bundles) hides
// behind the congestion.
func FiberCutSevere(topo *topology.Topology, start time.Time) Scenario {
	city := topo.Clusters()[0].Truncate(hierarchy.LevelCity)
	return Scenario{
		Name:     "fiber-cut-" + city.Leaf(),
		Category: CatLink,
		Severe:   true,
		Faults: []netsim.Fault{{
			Kind:      netsim.FaultFiberBundleCut,
			Location:  city,
			Magnitude: 0.5,
			Start:     start,
			End:       start.Add(30 * time.Minute),
		}},
		Truth: []hierarchy.Path{city},
		Start: start,
		End:   start.Add(30 * time.Minute),
	}
}

// KnownDeviceFailure reproduces the §5.1 "Automatic SOP" case: a single
// device in a redundancy group loses packets while its peers stay healthy.
// The SOP engine should isolate it automatically.
func KnownDeviceFailure(topo *topology.Topology, start time.Time) Scenario {
	var dev *topology.Device
	for i := range topo.Devices {
		if topo.Devices[i].Role == topology.RoleCSR {
			dev = &topo.Devices[i]
			break
		}
	}
	if dev == nil {
		panic("scenario: no CSR device")
	}
	return Scenario{
		Name:     "known-device-" + dev.Name,
		Category: CatDeviceHardware,
		Faults: []netsim.Fault{{
			Kind:      netsim.FaultDeviceHardware,
			Device:    dev.ID,
			Magnitude: 0.5,
			Start:     start,
			End:       start.Add(20 * time.Minute),
		}},
		Truth: []hierarchy.Path{dev.Path},
		Start: start,
		End:   start.Add(20 * time.Minute),
	}
}

// DDoSMultiSite reproduces the §5.1 "Multiple scene detection" case: a
// DDoS attack targeting n different sites simultaneously. SkyNet should
// produce n separate incidents, proving the attacks are unrelated.
func DDoSMultiSite(topo *topology.Topology, n int, start time.Time) []Scenario {
	sites := distinctSites(topo, n)
	out := make([]Scenario, 0, len(sites))
	for i, site := range sites {
		out = append(out, Scenario{
			Name:     fmt.Sprintf("ddos-%d-%s", i+1, site.Leaf()),
			Category: CatSecurity,
			Severe:   true,
			Faults: []netsim.Fault{{
				Kind:      netsim.FaultCongestion,
				Location:  site,
				Magnitude: 4,
				Start:     start,
				End:       start.Add(15 * time.Minute),
			}},
			Truth: []hierarchy.Path{site},
			Start: start,
			End:   start.Add(15 * time.Minute),
		})
	}
	return out
}

// ConcurrentIncidents reproduces the §5.1 "Scene ranking" case: two nearly
// simultaneous failures. The "big" one covers a larger area and generates
// more alerts — a flash-crowd congestion across a site, tripping SNMP and
// sFlow counters everywhere — but barely hurts anyone. The "critical" one
// involves a single border router whose partial hardware fault drops SLA
// customer traffic. The evaluator should rank the second higher despite
// its smaller alert count.
func ConcurrentIncidents(topo *topology.Topology, start time.Time) (big, critical Scenario) {
	cls := topo.Clusters()
	bigSite := cls[0].Parent()
	big = Scenario{
		Name:     "big-" + bigSite.Leaf(),
		Category: CatSecurity,
		Severe:   true,
		Faults: []netsim.Fault{{
			Kind:      netsim.FaultCongestion,
			Location:  bigSite,
			Magnitude: 1.8, // mild: many counters trip, little loss
			Start:     start,
			End:       start.Add(20 * time.Minute),
		}},
		Truth: []hierarchy.Path{bigSite},
		Start: start,
		End:   start.Add(20 * time.Minute),
	}
	// The critical incident hits a border router in a different city so
	// the two do not merge into one component.
	var dev *topology.Device
	for i := range topo.Devices {
		d := &topo.Devices[i]
		if d.Role == topology.RoleBSR && d.Attach.Truncate(hierarchy.LevelCity) != bigSite.Truncate(hierarchy.LevelCity) {
			dev = d
			break
		}
	}
	if dev == nil {
		panic("scenario: no BSR outside the big incident's city")
	}
	critical = Scenario{
		Name:     "critical-" + dev.Name,
		Category: CatDeviceHardware,
		Severe:   true,
		Faults: []netsim.Fault{{
			Kind:      netsim.FaultDeviceHardware,
			Device:    dev.ID,
			Magnitude: 0.6,
			Start:     start.Add(30 * time.Second),
			End:       start.Add(20 * time.Minute),
		}},
		Truth: []hierarchy.Path{dev.Path},
		Start: start.Add(30 * time.Second),
		End:   start.Add(20 * time.Minute),
	}
	return big, critical
}

// UnbalancedHashCase reproduces the §7.3 lesson: a BGP link break alert
// arrives first, the flood of packet drops and unreachability follows, and
// only minutes later does the device log the hardware error that is the
// actual root cause — demonstrating why first-alert-is-root-cause time
// ordering fails.
func UnbalancedHashCase(topo *topology.Topology, start time.Time) Scenario {
	var dev *topology.Device
	for i := range topo.Devices {
		if topo.Devices[i].Role == topology.RoleBSR {
			dev = &topo.Devices[i]
			break
		}
	}
	if dev == nil {
		panic("scenario: no BSR device")
	}
	end := start.Add(25 * time.Minute)
	return Scenario{
		Name:     "hash-hw-" + dev.Name,
		Category: CatDeviceHardware,
		Severe:   true,
		Faults: []netsim.Fault{
			// The software symptom surfaces first...
			{Kind: netsim.FaultDeviceSoftware, Device: dev.ID, Magnitude: 0.3, Start: start, End: end},
			// ...the hardware error is only logged minutes later.
			{Kind: netsim.FaultDeviceHardware, Device: dev.ID, Magnitude: 0.5, Start: start.Add(4 * time.Minute), End: end},
		},
		Truth: []hierarchy.Path{dev.Path},
		Start: start,
		End:   end,
	}
}

// distinctSites returns up to n site paths, spread across distinct logic
// sites (and cities) where possible so the attacks do not share
// aggregation layers and merge into one component.
func distinctSites(topo *topology.Topology, n int) []hierarchy.Path {
	seenSite := map[hierarchy.Path]bool{}
	var all []hierarchy.Path
	for _, cl := range topo.Clusters() {
		site := cl.Parent()
		if !seenSite[site] {
			seenSite[site] = true
			all = append(all, site)
		}
	}
	var out []hierarchy.Path
	used := map[hierarchy.Path]bool{}
	// Pass 1: one site per logic site.
	for _, s := range all {
		if len(out) == n {
			return out
		}
		ls := s.Truncate(hierarchy.LevelLogicSite)
		if !used[ls] {
			used[ls] = true
			out = append(out, s)
		}
	}
	// Pass 2: fill with remaining distinct sites.
	for _, s := range all {
		if len(out) == n {
			break
		}
		dup := false
		for _, o := range out {
			if o == s {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out
}
