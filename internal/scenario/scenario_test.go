package scenario

import (
	"math"
	"testing"
	"time"

	"skynet/internal/hierarchy"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

var epoch = time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

func topoSmall() *topology.Topology {
	return topology.MustGenerate(topology.SmallConfig())
}

func TestCategoryNames(t *testing.T) {
	for c := Category(0); c < NumCategories; c++ {
		if c.String() == "" {
			t.Errorf("category %d unnamed", c)
		}
	}
	if Category(99).String() != "category(99)" {
		t.Error("out of range name")
	}
}

func TestWeightsMatchPaper(t *testing.T) {
	// Figure 1's printed percentages sum to 102.1 % (rounding in the
	// paper); the weights must reproduce the printed values verbatim.
	sum := 0.0
	for _, w := range Weights {
		sum += w
	}
	if math.Abs(sum-1.021) > 1e-9 {
		t.Errorf("weights sum to %v, want the paper's 1.021", sum)
	}
	if Weights[CatDeviceHardware] != 0.426 || Weights[CatLink] != 0.185 {
		t.Error("headline weights drifted from Figure 1")
	}
}

func TestDrawCategoryDistribution(t *testing.T) {
	g := NewGenerator(topoSmall(), 42)
	counts := make([]int, NumCategories)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.DrawCategory()]++
	}
	for c := Category(0); c < NumCategories; c++ {
		got := float64(counts[c]) / n
		if math.Abs(got-Weights[c]) > 0.02 {
			t.Errorf("%v: drawn %.3f, want %.3f", c, got, Weights[c])
		}
	}
}

func TestRandomScenariosValid(t *testing.T) {
	topo := topoSmall()
	g := NewGenerator(topo, 1)
	sim := netsim.New(topo, 1)
	for c := Category(0); c < NumCategories; c++ {
		sc := g.Random(c, epoch)
		if sc.Name == "" {
			t.Errorf("%v: empty name", c)
		}
		if len(sc.Faults) == 0 || len(sc.Truth) == 0 {
			t.Errorf("%v: empty faults or truth", c)
		}
		if sc.End.Before(sc.Start) {
			t.Errorf("%v: inverted window", c)
		}
		if err := sc.Inject(sim); err != nil {
			t.Errorf("%v: inject: %v", c, err)
		}
	}
}

func TestRandomScenariosCauseObservableImpact(t *testing.T) {
	// Every category must move at least one observable the monitors can
	// see: path loss, device state, journal events, or utilization.
	topo := topoSmall()
	g := NewGenerator(topo, 3)
	for c := Category(0); c < NumCategories; c++ {
		sc := g.Random(c, epoch)
		sim := netsim.New(topo, 1)
		if err := sc.Inject(sim); err != nil {
			t.Fatal(err)
		}
		if err := sim.Step(epoch.Add(time.Minute)); err != nil {
			t.Fatal(err)
		}
		if !observable(t, sim, topo) {
			t.Errorf("%v (%s): no observable impact", c, sc.Name)
		}
	}
}

func observable(t *testing.T, sim *netsim.Simulator, topo *topology.Topology) bool {
	t.Helper()
	if len(sim.Journal(epoch, epoch.Add(time.Hour))) > 0 {
		return true
	}
	for i := 0; i < topo.NumDevices(); i++ {
		st := sim.DeviceState(topology.DeviceID(i))
		if !st.Up || st.SilentLoss > 0 || st.BitFlip > 0 || st.ClockDriftSeconds > 0 || st.RouteBlackhole > 0 {
			return true
		}
	}
	for i := 0; i < topo.NumLinks(); i++ {
		ls := sim.LinkState(topology.LinkID(i))
		if ls.CircuitsDown > 0 || ls.DemandMultiplier > 1 {
			return true
		}
	}
	return false
}

func TestDrawSpacing(t *testing.T) {
	g := NewGenerator(topoSmall(), 5)
	scs := g.Draw(10, epoch, time.Hour)
	if len(scs) != 10 {
		t.Fatalf("drew %d", len(scs))
	}
	for i := 1; i < len(scs); i++ {
		if !scs[i].Start.After(scs[i-1].Start) {
			t.Error("scenarios not spaced")
		}
	}
}

func TestMatches(t *testing.T) {
	topo := topoSmall()
	g := NewGenerator(topo, 9)
	sc := g.Random(CatInfrastructure, epoch)
	cl := sc.Truth[0]
	// Ancestor of truth matches.
	if !sc.Matches(cl.Parent(), epoch, epoch.Add(time.Minute)) {
		t.Error("ancestor should match")
	}
	// Descendant of truth matches.
	child := cl.MustChild("dev-x")
	if !sc.Matches(child, epoch, epoch.Add(time.Minute)) {
		t.Error("descendant should match")
	}
	// Sibling does not.
	sib := cl.Parent().MustChild("CLxx")
	if sc.Matches(sib, epoch, epoch.Add(time.Minute)) {
		t.Error("sibling should not match")
	}
	// Window fully before the scenario does not match.
	if sc.Matches(cl, epoch.Add(-2*time.Hour), epoch.Add(-time.Hour)) {
		t.Error("pre-window should not match")
	}
	// Window long after the scenario does not match.
	if sc.Matches(cl, sc.End.Add(time.Hour), sc.End.Add(2*time.Hour)) {
		t.Error("post-window should not match")
	}
}

func TestFiberCutSevere(t *testing.T) {
	topo := topoSmall()
	sc := FiberCutSevere(topo, epoch)
	if !sc.Severe {
		t.Error("fiber cut should be severe")
	}
	sim := netsim.New(topo, 1)
	if err := sc.Inject(sim); err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(epoch.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	r, err := sim.EvalInternet(topo.Clusters()[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.Loss <= 0 {
		t.Error("fiber cut should cause internet loss")
	}
}

func TestKnownDeviceFailure(t *testing.T) {
	topo := topoSmall()
	sc := KnownDeviceFailure(topo, epoch)
	if len(sc.Faults) != 1 || sc.Faults[0].Kind != netsim.FaultDeviceHardware {
		t.Fatalf("unexpected faults %+v", sc.Faults)
	}
	d, ok := topo.DeviceByPath(sc.Truth[0])
	if !ok || d.Role != topology.RoleCSR {
		t.Error("truth should be a CSR device path")
	}
}

func TestDDoSMultiSite(t *testing.T) {
	topo := topoSmall()
	scs := DDoSMultiSite(topo, 5, epoch)
	if len(scs) != 5 {
		t.Fatalf("got %d scenarios", len(scs))
	}
	seen := map[hierarchy.Path]bool{}
	for _, sc := range scs {
		if len(sc.Truth) != 1 {
			t.Fatal("each DDoS scenario should have one truth site")
		}
		if seen[sc.Truth[0]] {
			t.Errorf("duplicate site %v", sc.Truth[0])
		}
		seen[sc.Truth[0]] = true
		if sc.Truth[0].Level() != hierarchy.LevelSite {
			t.Errorf("truth %v not a site", sc.Truth[0])
		}
	}
}

func TestConcurrentIncidents(t *testing.T) {
	topo := topoSmall()
	big, critical := ConcurrentIncidents(topo, epoch)
	if big.Truth[0].Truncate(hierarchy.LevelCity) == critical.Truth[0].Truncate(hierarchy.LevelCity) {
		t.Error("incidents should be in different cities")
	}
	if !critical.Start.After(big.Start) {
		t.Error("critical incident should start slightly later")
	}
}

func TestUnbalancedHashCase(t *testing.T) {
	topo := topoSmall()
	sc := UnbalancedHashCase(topo, epoch)
	if len(sc.Faults) != 2 {
		t.Fatalf("want 2 faults, got %d", len(sc.Faults))
	}
	if !sc.Faults[0].Start.Before(sc.Faults[1].Start) {
		t.Error("software symptom must precede hardware root cause")
	}
	if sc.Faults[1].Kind != netsim.FaultDeviceHardware {
		t.Error("second fault must be the hardware root cause")
	}
}
