// Package scenario is the failure-scenario catalog: machine-generatable
// network failures with ground truth, used to drive the simulator and to
// score SkyNet's false positives and negatives the way the paper's
// operators scored the production system.
//
// Scenario categories and their draw weights follow the root-cause
// proportions of Figure 1; the named severe scenarios reproduce the four
// §5.1 case studies and the §2.2 war story.
package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"skynet/internal/hierarchy"
	"skynet/internal/netsim"
	"skynet/internal/topology"
)

// Category is a failure root-cause category from Figure 1.
type Category int

// The Figure 1 root-cause categories.
const (
	CatDeviceHardware Category = iota // 42.6 %
	CatLink                           // 18.5 %
	CatModification                   // 16.7 %
	CatDeviceSoftware                 //  9.3 %
	CatInfrastructure                 //  9.3 %
	CatRoute                          //  1.9 %
	CatSecurity                       //  1.9 %
	CatConfiguration                  //  1.9 %

	NumCategories
)

var categoryNames = [...]string{
	CatDeviceHardware: "device hardware error",
	CatLink:           "link error",
	CatModification:   "network modification error",
	CatDeviceSoftware: "device software error",
	CatInfrastructure: "infrastructure error",
	CatRoute:          "route error",
	CatSecurity:       "security error",
	CatConfiguration:  "configuration error",
}

// Weights are the Figure 1 proportions exactly as printed in the paper, in
// the same order as the Category constants. The printed percentages sum to
// 102.1 % (rounding in the source figure); DrawCategory normalizes.
var Weights = [NumCategories]float64{
	CatDeviceHardware: 0.426,
	CatLink:           0.185,
	CatModification:   0.167,
	CatDeviceSoftware: 0.093,
	CatInfrastructure: 0.093,
	CatRoute:          0.019,
	CatSecurity:       0.019,
	CatConfiguration:  0.019,
}

// String returns the Figure 1 category label.
func (c Category) String() string {
	if c < 0 || c >= NumCategories {
		return fmt.Sprintf("category(%d)", int(c))
	}
	return categoryNames[c]
}

// Scenario is one injected failure with ground truth.
type Scenario struct {
	// Name identifies the scenario instance.
	Name string
	// Category is the root-cause category.
	Category Category
	// Severe marks large-blast-radius scenarios (the paper's "severe
	// failures": alert floods, unprecedented shapes).
	Severe bool
	// Benign marks minor events redundancy absorbs: detectable, but not
	// harmful failures by the operators' labeling (§6.4).
	Benign bool
	// Faults are the injections realizing the scenario.
	Faults []netsim.Fault
	// Truth is the set of locations where an incident is expected; a
	// detected incident matches if its root is an ancestor or descendant
	// of any truth path.
	Truth []hierarchy.Path
	// Start and End bound the scenario's activity window.
	Start, End time.Time
}

// Inject applies all scenario faults to the simulator.
func (sc *Scenario) Inject(sim *netsim.Simulator) error {
	for _, f := range sc.Faults {
		if err := sim.Inject(f); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	}
	return nil
}

// Matches reports whether an incident rooted at p within [from, to) is
// attributable to this scenario: the window overlaps and the root is
// hierarchy-related to a truth location.
func (sc *Scenario) Matches(p hierarchy.Path, from, to time.Time) bool {
	if to.Before(sc.Start) || (!sc.End.IsZero() && from.After(sc.End.Add(5*time.Minute))) {
		return false
	}
	for _, tp := range sc.Truth {
		if p.Contains(tp) || tp.Contains(p) {
			return true
		}
	}
	return false
}

// Generator draws random scenarios over a topology.
type Generator struct {
	topo *topology.Topology
	rng  *rand.Rand
}

// NewGenerator creates a deterministic scenario generator.
func NewGenerator(topo *topology.Topology, seed int64) *Generator {
	return &Generator{topo: topo, rng: rand.New(rand.NewSource(seed))}
}

// DrawCategory samples a category according to the (normalized) Figure 1
// weights.
func (g *Generator) DrawCategory() Category {
	var total float64
	for _, w := range Weights {
		total += w
	}
	x := g.rng.Float64() * total
	var acc float64
	for c := Category(0); c < NumCategories; c++ {
		acc += Weights[c]
		if x < acc {
			return c
		}
	}
	return CatDeviceHardware
}

// Random generates one scenario of the given category starting at start.
// Scenarios self-heal after 5–20 minutes (mitigation in the real system;
// a bounded window keeps ground-truth matching crisp).
func (g *Generator) Random(cat Category, start time.Time) Scenario {
	dur := time.Duration(5+g.rng.Intn(15)) * time.Minute
	end := start.Add(dur)
	sc := Scenario{Category: cat, Start: start, End: end}
	switch cat {
	case CatDeviceHardware:
		d := g.pickDevice(topology.RoleISR, topology.RoleCSR, topology.RoleBSR, topology.RoleToR)
		kind := netsim.FaultDeviceHardware
		if g.rng.Float64() < 0.5 {
			kind = netsim.FaultDeviceDown
		}
		sc.Name = fmt.Sprintf("hw-%s", d.Name)
		sc.Faults = []netsim.Fault{{Kind: kind, Device: d.ID, Magnitude: 0.3 + 0.4*g.rng.Float64(), Start: start, End: end}}
		// Degrading hardware often takes the oscillator with it: a
		// quarter of hardware faults also drift the PTP clock, giving
		// the clock-sync monitor its thin real-world coverage sliver.
		if kind == netsim.FaultDeviceHardware && g.rng.Float64() < 0.25 {
			sc.Faults = append(sc.Faults, netsim.Fault{
				Kind: netsim.FaultClockDrift, Device: d.ID, Magnitude: 2, Start: start, End: end,
			})
		}
		sc.Truth = []hierarchy.Path{d.Path}
	case CatLink:
		l := g.pickAggregationLink()
		// Link errors that page operators sever a meaningful share of the
		// bundle — the §2.2 cut took half the entry cables at once.
		cut := l.Circuits/2 + 1 + g.rng.Intn((l.Circuits+1)/2)
		if cut > l.Circuits {
			cut = l.Circuits
		}
		sc.Name = fmt.Sprintf("link-%s", l.CircuitSet)
		sc.Faults = []netsim.Fault{{Kind: netsim.FaultLinkCut, Link: l.ID, Circuits: cut, Start: start, End: end}}
		sc.Truth = []hierarchy.Path{g.topo.Device(l.A).Path, g.topo.Device(l.B).Path}
	case CatModification:
		d := g.pickDevice(topology.RoleCSR, topology.RoleBSR)
		sc.Name = fmt.Sprintf("mod-%s", d.Name)
		sc.Faults = []netsim.Fault{{Kind: netsim.FaultModification, Device: d.ID, Magnitude: 0.3 + 0.5*g.rng.Float64(), Start: start, End: end}}
		sc.Truth = []hierarchy.Path{d.Path}
	case CatDeviceSoftware:
		d := g.pickDevice(topology.RoleISR, topology.RoleBSR, topology.RoleCSR)
		sc.Name = fmt.Sprintf("sw-%s", d.Name)
		sc.Faults = []netsim.Fault{{Kind: netsim.FaultDeviceSoftware, Device: d.ID, Magnitude: 0.2 + 0.3*g.rng.Float64(), Start: start, End: end}}
		// A crashing routing stack occasionally wedges the PTP daemon too.
		if g.rng.Float64() < 0.25 {
			sc.Faults = append(sc.Faults, netsim.Fault{
				Kind: netsim.FaultClockDrift, Device: d.ID, Magnitude: 1.5, Start: start, End: end,
			})
		}
		sc.Truth = []hierarchy.Path{d.Path}
	case CatInfrastructure:
		cl := g.pickCluster()
		sc.Name = fmt.Sprintf("power-%s", cl.Leaf())
		sc.Severe = true
		sc.Faults = []netsim.Fault{{Kind: netsim.FaultPowerFailure, Location: cl, Start: start, End: end}}
		sc.Truth = []hierarchy.Path{cl}
	case CatRoute:
		city := g.pickCluster().Truncate(hierarchy.LevelCity)
		kind := netsim.FaultRouteError
		label := "route"
		if g.rng.Float64() < 0.5 {
			kind = netsim.FaultRouteHijack
			label = "hijack"
		}
		sc.Name = fmt.Sprintf("%s-%s", label, city.Leaf())
		sc.Severe = true
		sc.Faults = []netsim.Fault{{Kind: kind, Location: city, Magnitude: 0.3 + 0.4*g.rng.Float64(), Start: start, End: end}}
		sc.Truth = []hierarchy.Path{city}
	case CatSecurity:
		site := g.pickCluster().Truncate(hierarchy.LevelSite)
		sc.Name = fmt.Sprintf("ddos-%s", site.Leaf())
		sc.Faults = []netsim.Fault{{Kind: netsim.FaultCongestion, Location: site, Magnitude: 2.5 + 2*g.rng.Float64(), Start: start, End: end}}
		sc.Truth = []hierarchy.Path{site}
	case CatConfiguration:
		d := g.pickDevice(topology.RoleISR, topology.RoleCSR)
		sc.Name = fmt.Sprintf("cfg-%s", d.Name)
		sc.Faults = []netsim.Fault{{Kind: netsim.FaultSilentLoss, Device: d.ID, Magnitude: 0.3 + 0.4*g.rng.Float64(), Start: start, End: end}}
		sc.Truth = []hierarchy.Path{d.Path}
	default:
		panic(fmt.Sprintf("scenario: unknown category %d", cat))
	}
	return sc
}

// Minor generates a benign network event: real, detectable, but absorbed
// by redundancy with little or no customer impact — the population that
// makes up most of the "hundreds of network events occur monthly, though
// only a few truly constitute harmful network failures" of §6.4.
func (g *Generator) Minor(start time.Time) Scenario {
	dur := time.Duration(5+g.rng.Intn(10)) * time.Minute
	end := start.Add(dur)
	sc := Scenario{Start: start, End: end, Benign: true}
	switch g.rng.Intn(4) {
	case 0: // one circuit of a fat bundle: redundancy absorbs it
		l := g.pickAggregationLink()
		sc.Name = "minor-cut-" + l.CircuitSet
		sc.Category = CatLink
		sc.Faults = []netsim.Fault{{Kind: netsim.FaultLinkCut, Link: l.ID, Circuits: 1, Start: start, End: end}}
		sc.Truth = []hierarchy.Path{g.topo.Device(l.A).Path, g.topo.Device(l.B).Path}
	case 1: // a lone ToR dies: one rack degraded, the cluster survives
		d := g.pickDevice(topology.RoleToR)
		sc.Name = "minor-tor-" + d.Name
		sc.Category = CatDeviceHardware
		sc.Faults = []netsim.Fault{{Kind: netsim.FaultDeviceDown, Device: d.ID, Start: start, End: end}}
		sc.Truth = []hierarchy.Path{d.Path}
	case 2: // mild flash crowd: counters trip, nothing breaks
		site := g.pickCluster().Parent()
		sc.Name = "minor-crowd-" + site.Leaf()
		sc.Category = CatSecurity
		sc.Faults = []netsim.Fault{{Kind: netsim.FaultCongestion, Location: site, Magnitude: 1.5, Start: start, End: end}}
		sc.Truth = []hierarchy.Path{site}
	default: // brief software blip on an access device
		d := g.pickDevice(topology.RoleISR)
		sc.Name = "minor-sw-" + d.Name
		sc.Category = CatDeviceSoftware
		sc.Faults = []netsim.Fault{{Kind: netsim.FaultDeviceSoftware, Device: d.ID, Magnitude: 0.05, Start: start, End: start.Add(2 * time.Minute)}}
		sc.Truth = []hierarchy.Path{d.Path}
	}
	return sc
}

// Draw generates n scenarios with Figure 1 category mix, spaced apart so
// their activity windows do not overlap.
func (g *Generator) Draw(n int, start time.Time, spacing time.Duration) []Scenario {
	out := make([]Scenario, 0, n)
	at := start
	for i := 0; i < n; i++ {
		sc := g.Random(g.DrawCategory(), at)
		sc.Name = fmt.Sprintf("%03d-%s", i, sc.Name)
		out = append(out, sc)
		at = at.Add(spacing)
	}
	return out
}

func (g *Generator) pickDevice(roles ...topology.Role) *topology.Device {
	want := make(map[topology.Role]bool, len(roles))
	for _, r := range roles {
		want[r] = true
	}
	var candidates []topology.DeviceID
	for i := range g.topo.Devices {
		if want[g.topo.Devices[i].Role] {
			candidates = append(candidates, g.topo.Devices[i].ID)
		}
	}
	if len(candidates) == 0 {
		panic("scenario: no device of requested roles")
	}
	return g.topo.Device(candidates[g.rng.Intn(len(candidates))])
}

func (g *Generator) pickAggregationLink() *topology.Link {
	var candidates []topology.LinkID
	for i := range g.topo.Links {
		l := &g.topo.Links[i]
		if l.InternetEntry {
			continue
		}
		ra := g.topo.Device(l.A).Role
		rb := g.topo.Device(l.B).Role
		if ra != topology.RoleToR && rb != topology.RoleToR {
			candidates = append(candidates, l.ID)
		}
	}
	if len(candidates) == 0 {
		panic("scenario: no aggregation links")
	}
	return g.topo.Link(candidates[g.rng.Intn(len(candidates))])
}

func (g *Generator) pickCluster() hierarchy.Path {
	cls := g.topo.Clusters()
	return cls[g.rng.Intn(len(cls))]
}
