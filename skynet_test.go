package skynet

import (
	"strings"
	"testing"
	"time"

	"skynet/internal/hierarchy"
)

// TestFacadeQuickstart exercises the documented public-API flow end to
// end: generate, inject, run, read ranked incidents.
func TestFacadeQuickstart(t *testing.T) {
	t0 := time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)
	topo := GenerateTopology(SmallTopology())
	runner, err := NewRunner(topo, DefaultEngineConfig(), DefaultMonitorConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	city := topo.Clusters()[0].Truncate(hierarchy.LevelCity)
	runner.Sim.MustInject(Fault{
		Kind: FaultFiberBundleCut, Location: city, Magnitude: 0.5,
		Start: t0.Add(time.Minute), End: t0.Add(20 * time.Minute),
	})
	if _, err := runner.Run(t0, t0.Add(8*time.Minute)); err != nil {
		t.Fatal(err)
	}
	severe := runner.Engine.Severe()
	if len(severe) == 0 {
		t.Fatal("no severe incidents from the quickstart scenario")
	}
	report := severe[0].Render()
	if !strings.Contains(report, "Incident") {
		t.Errorf("render: %q", report)
	}
	g := BuildVotingGraph(topo, severe[0])
	if g == nil {
		t.Fatal("no voting graph")
	}
}

func TestFacadeHelpers(t *testing.T) {
	p, err := ParsePath("RG01|CT01")
	if err != nil || p.Depth() != 2 {
		t.Fatalf("ParsePath: %v %v", p, err)
	}
	if MustPath("a", "b") != mustParse(t, "a|b") {
		t.Error("MustPath mismatch")
	}
	th, err := ParseThresholds("2/1+2/5")
	if err != nil || th != ProductionThresholds() {
		t.Errorf("thresholds: %v %v", th, err)
	}
	if _, err := BootstrapClassifier(); err != nil {
		t.Fatal(err)
	}
	if DefaultOperatorModel().Repair <= 0 {
		t.Error("operator model zero")
	}
	if DefaultIngestConfig().MaxConns <= 0 {
		t.Error("ingest config zero")
	}
	if ProductionTopology().Regions <= SmallTopology().Regions {
		t.Error("production topology should be bigger")
	}
}

func mustParse(t *testing.T, s string) Path {
	t.Helper()
	p, err := ParsePath(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	opts := DefaultTraceOptions()
	opts.Window = 10 * time.Minute
	opts.Scenarios = 1
	g, err := GenerateTrace(opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ReplayTrace(g.Alerts, g.Topo, DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if eng.RawIngested() != len(g.Alerts) {
		t.Errorf("replayed %d of %d", eng.RawIngested(), len(g.Alerts))
	}
}

func TestFacadeRankAndSeverity(t *testing.T) {
	t0 := time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)
	topo := GenerateTopology(SmallTopology())
	scs := DDoSMultiSite(topo, 2, t0.Add(time.Minute))
	runner, err := NewRunner(topo, DefaultEngineConfig(), DefaultMonitorConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs {
		if err := sc.Inject(runner.Sim); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := runner.Run(t0, t0.Add(8*time.Minute)); err != nil {
		t.Fatal(err)
	}
	ranked := Rank(runner.Engine.Active())
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Severity > ranked[i-1].Severity {
			t.Error("rank order broken")
		}
	}
}
