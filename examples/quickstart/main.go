// Quickstart: generate a synthetic cloud network, break something, and
// read the incident report SkyNet distills from the alert flood.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"skynet"
)

func main() {
	t0 := time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)

	// A small hierarchical cloud network: regions → cities → logic sites
	// → sites → clusters, with devices, redundant link bundles, and
	// customers riding them.
	topo := skynet.GenerateTopology(skynet.SmallTopology())
	fmt.Printf("topology: %d devices, %d links, %d clusters\n",
		topo.NumDevices(), topo.NumLinks(), len(topo.Clusters()))

	// The closed loop: simulator → Table 2 monitor fleet → SkyNet engine.
	runner, err := skynet.NewRunner(topo, skynet.DefaultEngineConfig(), skynet.DefaultMonitorConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}

	// Break a border router: a partial hardware fault silently dropping
	// 40% of its traffic for ten minutes.
	var target *skynet.Device
	for i := range topo.Devices {
		if topo.Devices[i].Role.String() == "BSR" {
			target = &topo.Devices[i]
			break
		}
	}
	runner.Sim.MustInject(skynet.Fault{
		Kind:      skynet.FaultDeviceHardware,
		Device:    target.ID,
		Magnitude: 0.4,
		Start:     t0.Add(time.Minute),
		End:       t0.Add(11 * time.Minute),
	})
	fmt.Printf("injected: hardware fault on %s\n\n", target.Name)

	// Run eight simulated minutes.
	stats, err := runner.Run(t0, t0.Add(8*time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw alerts: %d → structured: %d → incidents: %d (SOP mitigations: %d)\n\n",
		stats.RawAlerts, stats.Structured, stats.NewIncidents, stats.SOPExecutions)

	// The operator's view: ranked severe incidents, Figure 6 style.
	for _, in := range runner.Engine.Severe() {
		fmt.Println(in.Render())
	}
	// And the §7.1 voting view naming the prime suspect.
	for _, in := range runner.Engine.Active() {
		g := skynet.BuildVotingGraph(topo, in)
		if s := g.PrimeSuspect(); s != nil {
			fmt.Printf("incident %d prime suspect: %s (%s)\n", in.ID, s.Name, s.Role)
		}
	}
}
