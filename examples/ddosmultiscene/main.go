// Multiple scene detection: the §5.1 DDoS case.
//
// A DDoS attack hits five sites simultaneously. Clustering the alert flood
// by time AND location produces five separate incidents, telling operators
// the attacks are unrelated so every site gets blocked — no attack point
// is overlooked.
//
//	go run ./examples/ddosmultiscene
package main

import (
	"fmt"
	"log"
	"time"

	"skynet"
)

func main() {
	t0 := time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)
	topo := skynet.GenerateTopology(skynet.SmallTopology())
	runner, err := skynet.NewRunner(topo, skynet.DefaultEngineConfig(), skynet.DefaultMonitorConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}

	// The small topology has four independent aggregation domains
	// (2 cities x 2 logic sites); attacks beyond that share a domain and
	// correctly merge into one incident.
	attacks := skynet.DDoSMultiSite(topo, 4, t0.Add(time.Minute))
	fmt.Printf("injecting %d simultaneous DDoS attacks:\n", len(attacks))
	for _, sc := range attacks {
		fmt.Printf("  %s\n", sc.Truth[0])
		if err := sc.Inject(runner.Sim); err != nil {
			log.Fatal(err)
		}
	}

	stats, err := runner.Run(t0, t0.Add(8*time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d raw alerts → %d incidents\n\n", stats.RawAlerts, len(runner.Engine.Active()))

	distinct := map[int]bool{}
	for _, sc := range attacks {
		found := false
		for _, in := range runner.Engine.Active() {
			if sc.Matches(in.Root, in.Start, in.UpdateTime) {
				fmt.Printf("attack at %-40s → incident %d rooted at %s (severity %.1f)\n",
					sc.Truth[0], in.ID, in.Root, in.Severity)
				distinct[in.ID] = true
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("attack at %-40s → MISSED\n", sc.Truth[0])
		}
	}
	fmt.Printf("\n%d attacks → %d separate incidents\n", len(attacks), len(distinct))
	fmt.Println("→ operators block all sites at once instead of chasing one merged blob")
}
