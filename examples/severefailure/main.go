// Severe failure: the paper's §2.2 war story, replayed end to end.
//
// Half the cables at a data center's Internet entry point are cut. Before
// SkyNet, the resulting flood — link-down syslogs, SNMP congestion
// counters, out-of-band timeouts, internet-telemetry loss — buried the one
// congestion alert that mattered and mitigation took hours. This example
// shows the flood being distilled into a single severe incident at the
// right city, zoomed toward the entry point, with the evidence grouped by
// class.
//
//	go run ./examples/severefailure
package main

import (
	"fmt"
	"log"
	"time"

	"skynet"
)

func main() {
	t0 := time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)
	topo := skynet.GenerateTopology(skynet.SmallTopology())
	runner, err := skynet.NewRunner(topo, skynet.DefaultEngineConfig(), skynet.DefaultMonitorConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}

	sc := skynet.FiberCutSevere(topo, t0.Add(time.Minute))
	if err := sc.Inject(runner.Sim); err != nil {
		log.Fatal(err)
	}
	city := sc.Truth[0]
	fmt.Printf("scenario: %s — half the internet-entry cables of %s cut at %s\n\n",
		sc.Name, city, sc.Start.Format(time.TimeOnly))

	stats, err := runner.Run(t0, t0.Add(10*time.Minute))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("the flood:     %d raw alerts in 10 minutes\n", stats.RawAlerts)
	fmt.Printf("after SkyNet:  %d structured alerts, %d incident(s)\n\n",
		stats.Structured, len(runner.Engine.Active()))

	for _, in := range runner.Engine.Severe() {
		fmt.Println(in.Render())
		if !in.Zoomed.IsRoot() {
			fmt.Printf("location zoom-in refined %s → %s (level: %s)\n\n",
				in.Root, in.Zoomed, in.Zoomed.Level())
		}
		// The §7.1 voting view over the incident scope.
		g := skynet.BuildVotingGraph(topo, in)
		fmt.Println("alert voting (top devices):")
		ranked := g.Ranked()
		for i, v := range ranked {
			if i == 5 {
				break
			}
			fmt.Printf("  %-42s %-5s score=%d\n", v.Device.Name, v.Device.Role, v.Score())
		}
	}

	// What the §2.2 operators wished they had known: the entry stage is
	// congested, the intra-DC fabric is fine.
	fmt.Println("\nground truth check (simulator internals):")
	cl := topo.Clusters()[0]
	inet, _ := runner.Sim.EvalInternet(cl)
	internal, _ := runner.Sim.EvalPath(cl, topo.Clusters()[len(topo.Clusters())-1])
	fmt.Printf("  internet path loss from %s: %.1f%%\n", cl.Leaf(), inet.Loss*100)
	fmt.Printf("  intra-region path loss:      %.1f%%\n", internal.Loss*100)
}
