// Live streaming: SkyNet as a network service.
//
// This example runs the full production topology of the system in one
// process: an ingest server listening on real TCP and UDP sockets, a
// monitor fleet watching a simulated failure and shipping its raw alerts
// over those sockets (TCP JSON Lines for the relays, UDP datagrams for
// device-local agents), and an engine consuming the stream and printing
// incidents — the same wiring the skynetd daemon uses.
//
//	go run ./examples/livestream
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"skynet"
	"skynet/internal/hierarchy"
	"skynet/internal/ingest"
	"skynet/internal/monitors"
)

func main() {
	t0 := time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)
	topo := skynet.GenerateTopology(skynet.SmallTopology())

	// The analysis side: engine fed by the ingest server. A mutex
	// serializes engine access between the ingest dispatcher and the
	// ticking loop below.
	classifier, err := skynet.BootstrapClassifier()
	if err != nil {
		log.Fatal(err)
	}
	engine := skynet.NewEngine(skynet.DefaultEngineConfig(), topo, classifier)
	var mu sync.Mutex

	srv, err := skynet.ListenIngest(skynet.DefaultIngestConfig(), func(a skynet.Alert) {
		mu.Lock()
		engine.Ingest(a)
		mu.Unlock()
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("ingest listening on tcp=%s udp=%s\n", srv.TCPAddr(), srv.UDPAddr())

	// The monitoring side: a fleet watching a simulated severe failure,
	// split across the two transports like the production collectors.
	sim := skynet.NewSimulator(topo, 1)
	city := topo.Clusters()[0].Truncate(hierarchy.LevelCity)
	sim.MustInject(skynet.Fault{
		Kind: skynet.FaultFiberBundleCut, Location: city, Magnitude: 0.5,
		Start: t0.Add(30 * time.Second),
	})
	fleet := skynet.NewFleet(topo, monitors.DefaultConfig())

	tcpClient, err := ingest.DialTCP(context.Background(), srv.TCPAddr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer tcpClient.Close()
	udpClient, err := ingest.DialUDP(srv.UDPAddr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer udpClient.Close()

	sent := 0
	for now := t0; now.Before(t0.Add(5 * time.Minute)); now = now.Add(2 * time.Second) {
		if err := sim.Step(now); err != nil {
			log.Fatal(err)
		}
		for _, a := range fleet.Poll(sim, now) {
			// Syslog-style agents fire datagrams; everything else rides
			// the reliable relay stream.
			if a.Source == skynet.SourceSyslog {
				err = udpClient.Send(&a)
			} else {
				err = tcpClient.Send(&a)
			}
			if err != nil {
				log.Fatal(err)
			}
			sent++
		}
		if err := tcpClient.Flush(); err != nil {
			log.Fatal(err)
		}
		// Tick the engine in simulated time every 10 s.
		if now.Sub(t0)%(10*time.Second) == 0 {
			waitForDelivery(srv, sent)
			mu.Lock()
			res := engine.Tick(now)
			for _, in := range res.NewIncidents {
				fmt.Printf("\n--- NEW INCIDENT over the wire ---\n%s\n", in.Render())
			}
			mu.Unlock()
		}
	}

	waitForDelivery(srv, sent)
	mu.Lock()
	defer mu.Unlock()
	engine.Tick(t0.Add(5 * time.Minute))
	stats := srv.Stats()
	fmt.Printf("\nsent %d alerts over the network (accepted %d, rejected %d, %d TCP conns)\n",
		sent, stats.AlertsAccepted, stats.AlertsRejected, stats.TCPConnections)
	fmt.Printf("engine: %d raw → %d structured → %d incidents\n",
		engine.RawIngested(), engine.PreprocessStats().Out, len(engine.AllIncidents()))
}

// waitForDelivery lets the ingest pipeline drain before a tick reads the
// engine, since UDP/TCP delivery is asynchronous.
func waitForDelivery(srv *skynet.IngestServer, sent int) {
	ingest.WaitForAccepted(srv, sent, 2*time.Second)
	time.Sleep(20 * time.Millisecond) // allow the dispatcher to hand off
}
