// Scene ranking: the §5.1 concurrent-failures case.
//
// Two failures happen almost simultaneously. One has the bigger blast
// radius — a whole cluster loses power, hundreds of alerts. The other is a
// single border router silently dropping traffic that carries SLA
// customers. The evaluator's Equations 1–3 rank the quiet-but-critical
// incident by customer impact, not by alert volume — the paper's operators
// once got this wrong and paid for it.
//
//	go run ./examples/incidentranking
package main

import (
	"fmt"
	"log"
	"time"

	"skynet"
	"skynet/internal/scenario"
)

func main() {
	t0 := time.Date(2024, 7, 2, 11, 0, 0, 0, time.UTC)
	topo := skynet.GenerateTopology(skynet.SmallTopology())
	runner, err := skynet.NewRunner(topo, skynet.DefaultEngineConfig(), skynet.DefaultMonitorConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}

	big, critical := scenario.ConcurrentIncidents(topo, t0.Add(time.Minute))
	for _, sc := range []skynet.Scenario{big, critical} {
		if err := sc.Inject(runner.Sim); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("incident A (big):      power failure at %v\n", big.Truth[0])
	fmt.Printf("incident B (critical): partial hardware fault on %v\n\n", critical.Truth[0])

	if _, err := runner.Run(t0, t0.Add(10*time.Minute)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("ranked incident feed (what the on-call operator sees first):")
	for rank, in := range skynet.Rank(runner.Engine.Active()) {
		tag := ""
		switch {
		case big.Matches(in.Root, in.Start, in.UpdateTime):
			tag = "← the big one"
		case critical.Matches(in.Root, in.Start, in.UpdateTime):
			tag = "← the critical one"
		}
		fmt.Printf("  #%d severity=%6.1f alerting-locations=%3d raw-alerts=%5d root=%s %s\n",
			rank+1, in.Severity, len(in.Locations()), in.AlertCount(), in.Root, tag)
	}
	fmt.Println("\nalert volume does not decide the order — customer impact does.")
}
